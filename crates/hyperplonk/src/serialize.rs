//! Canonical versioned byte encodings for [`Proof`] and [`VerifyingKey`].
//!
//! Proof bytes are what a proving service actually ships: they can be
//! hashed, persisted, diffed across versions and replayed into a verifier
//! on another machine. Every artifact starts with the shared
//! `magic + version + kind` header of [`zkspeed_rt::codec`]; decoding
//! validates the header, every group point (canonical coordinates,
//! on-curve) and every field element (canonical, below the modulus), and
//! rejects trailing bytes — so `Proof::from_bytes(proof.to_bytes())`
//! round-trips exactly and corrupt inputs fail with a structured
//! [`DecodeError`].
//!
//! The encodings are little-endian with `u32` length prefixes:
//!
//! * **Proof** (kind 1): witness commitments, gate ZeroCheck rounds, `φ`/`π`
//!   commitments, wiring ZeroCheck rounds, batch evaluations, OpenCheck
//!   rounds, combined evaluations, `g′` opening — exactly the field order of
//!   [`Proof`];
//! * **VerifyingKey** (kind 2): `num_vars`, the embedded SRS blob
//!   (length-prefixed, self-describing), selector and sigma commitments.

use zkspeed_field::Fr;
use zkspeed_pcs::{Commitment, OpeningProof, Srs, MAX_NUM_VARS};
use zkspeed_poly::MultilinearPoly;
use zkspeed_rt::codec::{self, DecodeError, Reader};
use zkspeed_rt::Sha3_256;
use zkspeed_sumcheck::SumcheckProof;

use crate::circuit::{Circuit, GateSelectors, Witness};
use crate::keys::VerifyingKey;
use crate::proof::{BatchEvaluations, Proof};

/// Artifact kind tag of an encoded [`Proof`].
pub const KIND_PROOF: u8 = codec::Kind::Proof as u8;

/// Artifact kind tag of an encoded [`VerifyingKey`].
pub const KIND_VERIFYING_KEY: u8 = codec::Kind::VerifyingKey as u8;

/// Artifact kind tag of an encoded [`Circuit`].
pub const KIND_CIRCUIT: u8 = codec::Kind::Circuit as u8;

/// Artifact kind tag of an encoded [`Witness`].
pub const KIND_WITNESS: u8 = codec::Kind::Witness as u8;

fn write_fr(out: &mut Vec<u8>, value: &Fr) {
    out.extend_from_slice(&value.to_bytes_le());
}

fn read_fr(reader: &mut Reader<'_>) -> Result<Fr, DecodeError> {
    Fr::from_bytes_le(reader.take(32)?).ok_or(DecodeError::InvalidValue {
        what: "non-canonical Fr element",
    })
}

fn write_fr_list(out: &mut Vec<u8>, values: &[Fr]) {
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        write_fr(out, v);
    }
}

fn read_fr_list(reader: &mut Reader<'_>, what: &'static str) -> Result<Vec<Fr>, DecodeError> {
    let count = reader.count(32, what)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(read_fr(reader)?);
    }
    Ok(out)
}

impl Proof {
    /// Serializes the proof into its canonical versioned byte encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size_in_bytes() + 64);
        codec::write_header(&mut out, KIND_PROOF);
        for com in &self.witness_commitments {
            com.write_canonical(&mut out);
        }
        self.gate_zerocheck.write_canonical(&mut out);
        self.phi_commitment.write_canonical(&mut out);
        self.pi_commitment.write_canonical(&mut out);
        self.perm_zerocheck.write_canonical(&mut out);
        out.extend_from_slice(&(self.evaluations.values.len() as u32).to_le_bytes());
        for group in &self.evaluations.values {
            write_fr_list(&mut out, group);
        }
        self.opencheck.write_canonical(&mut out);
        write_fr_list(&mut out, &self.combined_evaluations);
        self.gprime_opening.write_canonical(&mut out);
        out
    }

    /// Decodes a byte string produced by [`Proof::to_bytes`].
    ///
    /// The decode is structural: shapes, headers, point validity and field
    /// canonicity are enforced here, while the cryptographic validity of the
    /// proof is established by the verifier.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] describing the first malformed field.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut reader = Reader::new(bytes);
        reader.header(KIND_PROOF)?;
        let witness_commitments = [
            Commitment::read_canonical(&mut reader)?,
            Commitment::read_canonical(&mut reader)?,
            Commitment::read_canonical(&mut reader)?,
        ];
        let gate_zerocheck = SumcheckProof::read_canonical(&mut reader)?;
        let phi_commitment = Commitment::read_canonical(&mut reader)?;
        let pi_commitment = Commitment::read_canonical(&mut reader)?;
        let perm_zerocheck = SumcheckProof::read_canonical(&mut reader)?;
        let num_groups = reader.count(4, "batch-evaluation groups")?;
        let mut values = Vec::with_capacity(num_groups);
        for _ in 0..num_groups {
            values.push(read_fr_list(&mut reader, "batch-evaluation group")?);
        }
        let opencheck = SumcheckProof::read_canonical(&mut reader)?;
        let combined_evaluations = read_fr_list(&mut reader, "combined evaluations")?;
        let gprime_opening = OpeningProof::read_canonical(&mut reader)?;
        reader.finish()?;
        Ok(Self {
            witness_commitments,
            gate_zerocheck,
            phi_commitment,
            pi_commitment,
            perm_zerocheck,
            evaluations: BatchEvaluations { values },
            opencheck,
            combined_evaluations,
            gprime_opening,
        })
    }
}

impl VerifyingKey {
    /// Serializes the verifying key (including its SRS) into the canonical
    /// versioned byte encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let srs_blob = self.srs.to_bytes();
        let mut out = Vec::with_capacity(srs_blob.len() + 8 * 97 + 32);
        codec::write_header(&mut out, KIND_VERIFYING_KEY);
        out.extend_from_slice(&(self.num_vars as u32).to_le_bytes());
        out.extend_from_slice(&(srs_blob.len() as u32).to_le_bytes());
        out.extend_from_slice(&srs_blob);
        for com in &self.selector_commitments {
            com.write_canonical(&mut out);
        }
        for com in &self.sigma_commitments {
            com.write_canonical(&mut out);
        }
        out
    }

    /// Decodes a byte string produced by [`VerifyingKey::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] describing the first malformed field.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut reader = Reader::new(bytes);
        reader.header(KIND_VERIFYING_KEY)?;
        let num_vars = reader.u32()? as usize;
        let srs_len = reader.count(1, "embedded SRS blob")?;
        let srs = Srs::from_bytes(reader.take(srs_len)?)?;
        if num_vars > srs.num_vars() {
            return Err(DecodeError::InvalidLength {
                what: "verifying-key num_vars",
                expected: srs.num_vars(),
                found: num_vars,
            });
        }
        let mut selectors = Vec::with_capacity(5);
        for _ in 0..5 {
            selectors.push(Commitment::read_canonical(&mut reader)?);
        }
        let mut sigmas = Vec::with_capacity(3);
        for _ in 0..3 {
            sigmas.push(Commitment::read_canonical(&mut reader)?);
        }
        reader.finish()?;
        Ok(Self {
            num_vars,
            srs,
            selector_commitments: [
                selectors[0],
                selectors[1],
                selectors[2],
                selectors[3],
                selectors[4],
            ],
            sigma_commitments: [sigmas[0], sigmas[1], sigmas[2]],
        })
    }
}

impl Circuit {
    /// Serializes the circuit into its canonical versioned byte encoding:
    /// the shared header (kind [`KIND_CIRCUIT`]), `num_vars`, the five
    /// selector tables `q_L, q_R, q_M, q_O, q_C` (each `2^μ` field
    /// elements), and the three wiring-permutation columns (each `2^μ`
    /// little-endian `u64` slot indices).
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.num_gates();
        let mut out = Vec::with_capacity(12 + n * (5 * 32 + 3 * 8));
        codec::write_header(&mut out, KIND_CIRCUIT);
        out.extend_from_slice(&(self.num_vars() as u32).to_le_bytes());
        for selector in self.selectors() {
            for v in selector.evaluations() {
                write_fr(&mut out, v);
            }
        }
        for column in 0..3 {
            for gate in 0..n {
                out.extend_from_slice(&(self.sigma_slot(column, gate) as u64).to_le_bytes());
            }
        }
        out
    }

    /// Decodes a byte string produced by [`Circuit::to_bytes`], validating
    /// the header, the size bound, every selector element's canonicity and
    /// that the wiring columns form a permutation of the `3·2^μ` slots.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] describing the first malformed field.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut reader = Reader::new(bytes);
        reader.header(KIND_CIRCUIT)?;
        let num_vars = read_num_vars(&mut reader, "circuit num_vars")?;
        let n = 1usize << num_vars;
        // The whole payload size is implied by num_vars; reject short input
        // before allocating gate tables.
        let needed = n * (5 * 32 + 3 * 8);
        if reader.remaining() < needed {
            return Err(DecodeError::UnexpectedEnd {
                needed,
                remaining: reader.remaining(),
            });
        }
        let mut selectors = Vec::with_capacity(5);
        for _ in 0..5 {
            let mut table = Vec::with_capacity(n);
            for _ in 0..n {
                table.push(read_fr(&mut reader)?);
            }
            selectors.push(table);
        }
        let mut sigma = Vec::with_capacity(3 * n);
        let mut seen = vec![false; 3 * n];
        for _ in 0..3 * n {
            let slot = reader.u64()? as usize;
            if slot >= 3 * n || seen[slot] {
                return Err(DecodeError::InvalidValue {
                    what: "wiring permutation",
                });
            }
            seen[slot] = true;
            sigma.push(slot);
        }
        reader.finish()?;
        let gates: Vec<GateSelectors> = (0..n)
            .map(|i| GateSelectors {
                q_l: selectors[0][i],
                q_r: selectors[1][i],
                q_m: selectors[2][i],
                q_o: selectors[3][i],
                q_c: selectors[4][i],
            })
            .collect();
        Ok(Circuit::new(&gates, sigma))
    }

    /// The circuit's canonical digest: SHA3-256 over [`Circuit::to_bytes`].
    ///
    /// This is the key a proving service registers sessions under — two
    /// circuits share a digest exactly when their canonical encodings are
    /// byte-identical.
    pub fn digest(&self) -> [u8; 32] {
        Sha3_256::digest(&self.to_bytes())
    }
}

impl Witness {
    /// Serializes the witness assignment into its canonical versioned byte
    /// encoding: the shared header (kind [`KIND_WITNESS`]), `num_vars`, and
    /// the three execution-trace columns `w₁, w₂, w₃` (each `2^μ` field
    /// elements).
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = 1usize << self.num_vars();
        let mut out = Vec::with_capacity(12 + n * 3 * 32);
        codec::write_header(&mut out, KIND_WITNESS);
        out.extend_from_slice(&(self.num_vars() as u32).to_le_bytes());
        for column in &self.columns {
            for v in column.evaluations() {
                write_fr(&mut out, v);
            }
        }
        out
    }

    /// Decodes a byte string produced by [`Witness::to_bytes`].
    ///
    /// Structural validation only (header, size bound, element canonicity);
    /// whether the assignment satisfies a circuit is checked by the prover.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] describing the first malformed field.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut reader = Reader::new(bytes);
        reader.header(KIND_WITNESS)?;
        let num_vars = read_num_vars(&mut reader, "witness num_vars")?;
        let n = 1usize << num_vars;
        let needed = n * 3 * 32;
        if reader.remaining() < needed {
            return Err(DecodeError::UnexpectedEnd {
                needed,
                remaining: reader.remaining(),
            });
        }
        let mut columns = Vec::with_capacity(3);
        for _ in 0..3 {
            let mut table = Vec::with_capacity(n);
            for _ in 0..n {
                table.push(read_fr(&mut reader)?);
            }
            columns.push(MultilinearPoly::new(table));
        }
        reader.finish()?;
        let mut iter = columns.into_iter();
        Ok(Witness::new(
            iter.next().expect("three columns"),
            iter.next().expect("three columns"),
            iter.next().expect("three columns"),
        ))
    }
}

/// Reads a `num_vars` field and bounds it by the largest SRS any session
/// could serve ([`MAX_NUM_VARS`]), so a corrupt size cannot request a
/// `2^4294967295`-entry allocation.
fn read_num_vars(reader: &mut Reader<'_>, what: &'static str) -> Result<usize, DecodeError> {
    let num_vars = reader.u32()? as usize;
    if num_vars > MAX_NUM_VARS {
        return Err(DecodeError::InvalidLength {
            what,
            expected: MAX_NUM_VARS,
            found: num_vars,
        });
    }
    Ok(num_vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::try_preprocess;
    use crate::mock::{mock_circuit, SparsityProfile};
    use crate::prover::prove_on;
    use crate::verifier::verify;
    use zkspeed_rt::pool;
    use zkspeed_rt::rngs::StdRng;
    use zkspeed_rt::SeedableRng;

    fn proof_and_vk() -> (Proof, VerifyingKey) {
        let mut r = StdRng::seed_from_u64(0x5eed_0015);
        let srs = Srs::setup(4, &mut r);
        let (circuit, witness) = mock_circuit(4, SparsityProfile::paper_default(), &mut r);
        let (pk, vk) = try_preprocess(circuit, &srs).expect("circuit fits");
        let proof = prove_on(&pk, &witness, &pool::ambient()).expect("valid witness");
        (proof, vk)
    }

    #[test]
    fn proof_bytes_roundtrip_exactly() {
        let (proof, vk) = proof_and_vk();
        let bytes = proof.to_bytes();
        let back = Proof::from_bytes(&bytes).expect("valid encoding");
        assert_eq!(back, proof);
        // The decoded proof still verifies.
        verify(&vk, &back).expect("decoded proof verifies");
        // Determinism: encoding is canonical.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn verifying_key_bytes_roundtrip() {
        let (proof, vk) = proof_and_vk();
        let bytes = vk.to_bytes();
        let back = VerifyingKey::from_bytes(&bytes).expect("valid encoding");
        assert_eq!(back.num_vars, vk.num_vars);
        assert_eq!(back.selector_commitments, vk.selector_commitments);
        assert_eq!(back.sigma_commitments, vk.sigma_commitments);
        verify(&back, &proof).expect("proof verifies against decoded key");
    }

    #[test]
    fn corrupt_proof_headers_are_rejected() {
        let (proof, _) = proof_and_vk();
        let bytes = proof.to_bytes();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Proof::from_bytes(&bad_magic),
            Err(DecodeError::BadMagic { .. })
        ));

        let mut bad_version = bytes.clone();
        bad_version[4] = 0x7f;
        assert!(matches!(
            Proof::from_bytes(&bad_version),
            Err(DecodeError::UnsupportedVersion { found: 0x7f })
        ));

        // A verifying-key blob is not a proof.
        let (_, vk) = proof_and_vk();
        assert!(matches!(
            Proof::from_bytes(&vk.to_bytes()),
            Err(DecodeError::WrongKind {
                expected: KIND_PROOF,
                found: KIND_VERIFYING_KEY
            })
        ));

        // Truncation and trailing garbage are rejected.
        assert!(Proof::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            Proof::from_bytes(&long),
            Err(DecodeError::TrailingBytes { count: 1 })
        ));

        // Corrupting a point's coordinate bytes breaks curve membership.
        let mut bad_point = bytes.clone();
        bad_point[8] ^= 1;
        assert!(Proof::from_bytes(&bad_point).is_err());
    }

    #[test]
    fn circuit_bytes_roundtrip_and_digest_is_canonical() {
        let mut r = StdRng::seed_from_u64(0x5eed_0016);
        let (circuit, witness) = mock_circuit(4, SparsityProfile::paper_default(), &mut r);
        let bytes = circuit.to_bytes();
        let back = Circuit::from_bytes(&bytes).expect("valid encoding");
        assert_eq!(back.num_vars(), circuit.num_vars());
        for i in 0..circuit.num_gates() {
            assert_eq!(back.gate(i), circuit.gate(i));
            for column in 0..3 {
                assert_eq!(back.sigma_slot(column, i), circuit.sigma_slot(column, i));
            }
        }
        // Canonical: re-encoding is byte-identical, and the digest keys on
        // exactly those bytes.
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(back.digest(), circuit.digest());
        // The decoded circuit still accepts its witness.
        assert!(back.check_witness(&witness).is_ok());
        // A different circuit gets a different digest.
        let (other, _) = mock_circuit(4, SparsityProfile::paper_default(), &mut r);
        assert_ne!(other.digest(), circuit.digest());
    }

    #[test]
    fn witness_bytes_roundtrip() {
        let mut r = StdRng::seed_from_u64(0x5eed_0017);
        let (circuit, witness) = mock_circuit(3, SparsityProfile::paper_default(), &mut r);
        let bytes = witness.to_bytes();
        let back = Witness::from_bytes(&bytes).expect("valid encoding");
        assert_eq!(back.num_vars(), witness.num_vars());
        for (a, b) in back.columns.iter().zip(witness.columns.iter()) {
            assert_eq!(a.evaluations(), b.evaluations());
        }
        assert_eq!(back.to_bytes(), bytes);
        assert!(circuit.check_witness(&back).is_ok());
    }

    #[test]
    fn corrupt_circuit_and_witness_bytes_are_rejected() {
        let mut r = StdRng::seed_from_u64(0x5eed_0018);
        let (circuit, witness) = mock_circuit(3, SparsityProfile::paper_default(), &mut r);

        let bytes = circuit.to_bytes();
        // Oversized num_vars fails before allocating.
        let mut huge = bytes.clone();
        huge[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Circuit::from_bytes(&huge),
            Err(DecodeError::InvalidLength {
                what: "circuit num_vars",
                ..
            })
        ));
        // A plausible num_vars with a short payload fails the size check.
        let mut bigger = bytes.clone();
        bigger[8..12].copy_from_slice(&10u32.to_le_bytes());
        assert!(matches!(
            Circuit::from_bytes(&bigger),
            Err(DecodeError::UnexpectedEnd { .. })
        ));
        // Breaking the permutation (duplicate slot) is structural, not a
        // panic.
        let sigma_start = bytes.len() - 3 * circuit.num_gates() * 8;
        let mut bad_sigma = bytes.clone();
        bad_sigma.copy_within(sigma_start..sigma_start + 8, sigma_start + 8);
        assert!(matches!(
            Circuit::from_bytes(&bad_sigma),
            Err(DecodeError::InvalidValue {
                what: "wiring permutation",
            })
        ));
        // Truncation / trailing bytes.
        assert!(Circuit::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            Circuit::from_bytes(&long),
            Err(DecodeError::TrailingBytes { .. })
        ));
        // A witness blob is not a circuit.
        assert!(matches!(
            Circuit::from_bytes(&witness.to_bytes()),
            Err(DecodeError::WrongKind {
                expected: KIND_CIRCUIT,
                found: KIND_WITNESS
            })
        ));

        let wbytes = witness.to_bytes();
        let mut huge = wbytes.clone();
        huge[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Witness::from_bytes(&huge).is_err());
        // Non-canonical field element (all-ones 32 bytes ≥ the modulus).
        let mut bad_fr = wbytes.clone();
        bad_fr[12..44].fill(0xff);
        assert!(matches!(
            Witness::from_bytes(&bad_fr),
            Err(DecodeError::InvalidValue { .. })
        ));
        assert!(Witness::from_bytes(&wbytes[..wbytes.len() - 1]).is_err());
    }
}
