//! The HyperPlonk prover: the five protocol steps of Figure 2 of the zkSpeed
//! paper, executed in series with every challenge drawn from the SHA3
//! transcript.
//!
//! | Step | Kernels exercised |
//! |---|---|
//! | 1. Witness Commits | Sparse MSM |
//! | 2. Gate Identity | Build MLE, SumCheck (ZeroCheck), MLE Update |
//! | 3. Wiring Identity | Construct N&D, FracMLE, Product MLE, dense MSM, ZeroCheck |
//! | 4. Batch Evaluations | MLE Evaluate |
//! | 5. Polynomial Opening | MLE Combine, Build MLE, SumCheck (OpenCheck), halving MSMs |
//!
//! [`prove_with_report_on`] also returns wall-clock and operation-count
//! measurements per step; these calibrate the CPU baseline model used by the
//! accelerator's design-space exploration. The `*_msm_on` variants
//! additionally pin the MSM engine configuration
//! ([`zkspeed_curve::MsmConfig`]) used by every commitment and opening.

use std::sync::Arc;
use std::time::Instant;

use zkspeed_curve::{MsmConfig, MsmStats, SparseMsmStats};
use zkspeed_field::Fr;
use zkspeed_pcs::{commit_sparse_with_tables_on, commit_with_tables_on, open_with_tables_on};
use zkspeed_poly::{fraction_mle, product_mle, split_even_odd, MultilinearPoly, VirtualPolynomial};
use zkspeed_rt::pool::{self, Backend, Serial};
use zkspeed_rt::trace::TraceSink;
use zkspeed_sumcheck::{prove_traced_on as sumcheck_prove_traced_on, prove_zerocheck_traced_on};
use zkspeed_transcript::Transcript;

use crate::circuit::{SatisfactionError, Witness};
use crate::keys::ProvingKey;
use crate::proof::{query_groups, BatchEvaluations, PolyLabel, Proof};

/// Per-round degree of the Gate Identity ZeroCheck polynomial (Eq. 3 with the
/// `eq` mask): `q_M·w₁·w₂·eq` has degree 4.
pub const GATE_SUMCHECK_DEGREE: usize = 4;
/// Per-round degree of the Wiring Identity ZeroCheck polynomial (Eq. 4 with
/// the `eq` mask): `φ·D₁·D₂·D₃·eq` has degree 5.
pub const PERM_SUMCHECK_DEGREE: usize = 5;
/// Per-round degree of the OpenCheck polynomial (Eq. 5): `yᵢ·kᵢ` has degree 2.
pub const OPENCHECK_DEGREE: usize = 2;

/// The protocol steps, in execution order.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolStep {
    /// Step 1: Sparse-MSM commitments to the witness columns.
    WitnessCommit,
    /// Step 2: Gate Identity ZeroCheck.
    GateIdentity,
    /// Step 3: Wiring Identity (Construct N&D, FracMLE, ProdMLE, MSMs,
    /// PermCheck).
    WireIdentity,
    /// Step 4: Batch evaluations of the queried MLEs.
    BatchEvaluation,
    /// Step 5: Polynomial opening (MLE Combine, OpenCheck, halving MSMs).
    PolynomialOpening,
}

impl ProtocolStep {
    /// All steps in execution order.
    pub const ALL: [ProtocolStep; 5] = [
        ProtocolStep::WitnessCommit,
        ProtocolStep::GateIdentity,
        ProtocolStep::WireIdentity,
        ProtocolStep::BatchEvaluation,
        ProtocolStep::PolynomialOpening,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolStep::WitnessCommit => "Witness Commits",
            ProtocolStep::GateIdentity => "Gate Identity",
            ProtocolStep::WireIdentity => "Wire Identity",
            ProtocolStep::BatchEvaluation => "Batch Evals",
            ProtocolStep::PolynomialOpening => "Poly Open",
        }
    }
}

/// Wall-clock and operation-count measurements from one proving run.
#[derive(Clone, Debug, Default)]
pub struct ProverReport {
    /// Problem size `μ`.
    pub num_vars: usize,
    /// Seconds spent in each protocol step, indexed by [`ProtocolStep::ALL`].
    pub step_seconds: [f64; 5],
    /// Sparse-MSM statistics of the Witness Commit step (all three columns).
    pub witness_msm: SparseMsmStats,
    /// Dense-MSM statistics of the Wiring Identity step (`φ` and `π`).
    pub wiring_msm: MsmStats,
    /// MSM statistics of the Polynomial Opening step (halving MSMs).
    pub opening_msm: MsmStats,
    /// Number of SHA3 transcript invocations over the whole proof.
    pub transcript_hashes: u64,
}

impl ProverReport {
    /// Total proving time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.step_seconds.iter().sum()
    }

    /// Seconds spent in a given step.
    pub fn seconds(&self, step: ProtocolStep) -> f64 {
        let idx = ProtocolStep::ALL.iter().position(|s| *s == step).unwrap();
        self.step_seconds[idx]
    }
}

/// Errors returned by the prover.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProveError {
    /// The witness does not satisfy the circuit.
    UnsatisfiedWitness(SatisfactionError),
}

impl core::fmt::Display for ProveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProveError::UnsatisfiedWitness(e) => write!(f, "witness does not satisfy circuit: {e}"),
        }
    }
}

impl std::error::Error for ProveError {}

/// Proves that `witness` satisfies the circuit in `pk` on an explicit
/// execution backend.
///
/// # Errors
///
/// Returns [`ProveError::UnsatisfiedWitness`] if the witness fails the
/// circuit's gate or wiring constraints.
pub fn prove_on(
    pk: &ProvingKey,
    witness: &Witness,
    backend: &Arc<dyn Backend>,
) -> Result<Proof, ProveError> {
    prove_with_report_on(pk, witness, backend).map(|(proof, _)| proof)
}

/// [`prove_on`], additionally returning per-step measurements.
///
/// # Errors
///
/// Returns [`ProveError::UnsatisfiedWitness`] if the witness fails the
/// circuit's gate or wiring constraints.
pub fn prove_with_report_on(
    pk: &ProvingKey,
    witness: &Witness,
    backend: &Arc<dyn Backend>,
) -> Result<(Proof, ProverReport), ProveError> {
    prove_with_report_msm_on(pk, witness, backend, MsmConfig::default())
}

/// [`prove_with_report_on`] with an explicit MSM engine configuration for
/// every commitment and opening of the proof (witness commits, φ/π commits,
/// halving opening MSMs). Every configuration produces bit-identical proof
/// encodings; only the operation schedule (and therefore the report's
/// counters) differs.
///
/// # Errors
///
/// Returns [`ProveError::UnsatisfiedWitness`] if the witness fails the
/// circuit's gate or wiring constraints.
pub fn prove_with_report_msm_on(
    pk: &ProvingKey,
    witness: &Witness,
    backend: &Arc<dyn Backend>,
    msm: MsmConfig,
) -> Result<(Proof, ProverReport), ProveError> {
    pk.circuit
        .check_witness(witness)
        .map_err(ProveError::UnsatisfiedWitness)?;
    Ok(prove_unchecked_msm_on(pk, witness, backend, msm))
}

/// Proves every witness in `witnesses` against the same proving key,
/// fanning the independent proofs out across the backend's worker pool.
///
/// All witnesses are validated up front; the proofs are returned in input
/// order and each is bit-identical to a [`prove_on`] run of the same
/// witness on any backend.
///
/// # Errors
///
/// Returns [`ProveError::UnsatisfiedWitness`] for the first invalid witness
/// (no proving work is started in that case).
pub fn prove_batch_on(
    pk: &ProvingKey,
    witnesses: &[Witness],
    backend: &Arc<dyn Backend>,
) -> Result<Vec<Proof>, ProveError> {
    prove_batch_msm_on(pk, witnesses, backend, MsmConfig::default())
}

/// [`prove_batch_on`] with an explicit MSM engine configuration.
///
/// # Errors
///
/// Returns [`ProveError::UnsatisfiedWitness`] for the first invalid witness
/// (no proving work is started in that case).
pub fn prove_batch_msm_on(
    pk: &ProvingKey,
    witnesses: &[Witness],
    backend: &Arc<dyn Backend>,
    msm: MsmConfig,
) -> Result<Vec<Proof>, ProveError> {
    Ok(
        prove_batch_with_reports_msm_on(pk, witnesses, backend, msm)?
            .into_iter()
            .map(|(proof, _)| proof)
            .collect(),
    )
}

/// [`prove_batch_msm_on`], additionally returning each proof's per-step
/// measurements — the proving service merges the reports' MSM statistics
/// into its metrics rollups. Proofs are bit-identical to the report-free
/// variant.
///
/// # Errors
///
/// Returns [`ProveError::UnsatisfiedWitness`] for the first invalid witness
/// (no proving work is started in that case).
pub fn prove_batch_with_reports_msm_on(
    pk: &ProvingKey,
    witnesses: &[Witness],
    backend: &Arc<dyn Backend>,
    msm: MsmConfig,
) -> Result<Vec<(Proof, ProverReport)>, ProveError> {
    prove_batch_with_reports_traced_on(pk, witnesses, backend, msm, &TraceSink::disabled(), &[])
}

/// [`prove_batch_with_reports_msm_on`] with phase-level tracing: every
/// protocol step, SumCheck round and MSM pass of every proof records a span
/// into `trace`, tagged with the corresponding id from `job_ids` (pass an
/// empty slice to tag all proofs with job id 0). Tracing observes wall time
/// only — it never touches the transcript or the work schedule — so proofs
/// are bit-identical with tracing on or off.
///
/// # Errors
///
/// Returns [`ProveError::UnsatisfiedWitness`] for the first invalid witness
/// (no proving work is started in that case).
///
/// # Panics
///
/// Panics if `job_ids` is non-empty and shorter than `witnesses`.
pub fn prove_batch_with_reports_traced_on(
    pk: &ProvingKey,
    witnesses: &[Witness],
    backend: &Arc<dyn Backend>,
    msm: MsmConfig,
    trace: &TraceSink,
    job_ids: &[u64],
) -> Result<Vec<(Proof, ProverReport)>, ProveError> {
    assert!(
        job_ids.is_empty() || job_ids.len() >= witnesses.len(),
        "job_ids must be empty or cover every witness"
    );
    let job_id = |i: usize| -> u64 { job_ids.get(i).copied().unwrap_or(0) };
    for witness in witnesses {
        pk.circuit
            .check_witness(witness)
            .map_err(ProveError::UnsatisfiedWitness)?;
    }
    if witnesses.len() <= 1 || backend.threads() == 1 {
        return Ok(witnesses
            .iter()
            .enumerate()
            .map(|(i, w)| prove_unchecked_traced_on(pk, w, backend, msm, trace, job_id(i)))
            .collect());
    }
    // One job per proof; each job still hands its inner MSM / SumCheck work
    // to the same pool, and the pool's helping scheduler keeps every thread
    // busy across proof boundaries. Modmul deltas are re-added in input
    // order so profiling counters match a serial batch.
    let job_pk = pk.clone();
    let job_witnesses = witnesses.to_vec();
    let job_tags: Vec<u64> = (0..witnesses.len()).map(job_id).collect();
    let job_trace = trace.clone();
    let inner = Arc::clone(backend);
    let proofs = pool::map_indices_on(&**backend, witnesses.len(), move |i| {
        zkspeed_field::measure_modmuls(|| {
            prove_unchecked_traced_on(
                &job_pk,
                &job_witnesses[i],
                &inner,
                msm,
                &job_trace,
                job_tags[i],
            )
        })
    });
    Ok(proofs
        .into_iter()
        .map(|(proved, muls)| {
            zkspeed_field::add_modmul_count(muls);
            proved
        })
        .collect())
}

/// Runs the prover without checking witness satisfiability first.
///
/// Used by soundness tests (an unsatisfied witness yields a proof the
/// verifier rejects) and by callers that have already validated the witness.
pub fn prove_unchecked_on(
    pk: &ProvingKey,
    witness: &Witness,
    backend: &Arc<dyn Backend>,
) -> (Proof, ProverReport) {
    prove_unchecked_msm_on(pk, witness, backend, MsmConfig::default())
}

/// [`prove_unchecked_on`] with an explicit MSM engine configuration.
pub fn prove_unchecked_msm_on(
    pk: &ProvingKey,
    witness: &Witness,
    backend: &Arc<dyn Backend>,
    msm: MsmConfig,
) -> (Proof, ProverReport) {
    prove_unchecked_traced_on(pk, witness, backend, msm, &TraceSink::disabled(), 0)
}

/// [`prove_unchecked_msm_on`] with phase-level tracing (see
/// [`prove_batch_with_reports_traced_on`] for the tracing contract).
pub fn prove_unchecked_traced_on(
    pk: &ProvingKey,
    witness: &Witness,
    backend: &Arc<dyn Backend>,
    msm: MsmConfig,
    trace: &TraceSink,
    job: u64,
) -> (Proof, ProverReport) {
    let mu = pk.circuit.num_vars();
    let mut report = ProverReport {
        num_vars: mu,
        ..ProverReport::default()
    };

    let mut transcript = Transcript::new(b"zkspeed-hyperplonk");
    crate::keys::bind_circuit_to_transcript(
        &mut transcript,
        mu,
        &pk.selector_commitments,
        &pk.sigma_commitments,
    );

    // ----- Step 1: Witness Commits (Sparse MSMs) -------------------------
    // The three column commitments are independent, so they fan out as one
    // job per column (each sparse MSM stays serial inside its job); results
    // are folded into the transcript in column order, so the proof is
    // bit-identical to a serial run.
    let t0 = Instant::now();
    let step_span = trace.span_with("witness-commit", "prove", &[("job", job)]);
    let job_srs = pk.srs.clone();
    let job_columns = witness.columns.clone();
    let job_tables = pk.commit_tables.clone();
    let job_trace = trace.clone();
    let column_commitments = pool::map_indices_on(&**backend, 3, move |j| {
        let _msm_span =
            job_trace.span_with("msm-witness", "msm", &[("job", job), ("column", j as u64)]);
        zkspeed_field::measure_modmuls(|| {
            commit_sparse_with_tables_on(
                &Serial,
                &job_srs,
                &job_columns[j],
                msm,
                job_tables.as_deref(),
            )
        })
    });
    let mut witness_commitments = Vec::with_capacity(3);
    for ((com, stats), muls) in column_commitments {
        zkspeed_field::add_modmul_count(muls);
        report.witness_msm.zeros += stats.zeros;
        report.witness_msm.ones += stats.ones;
        report.witness_msm.dense += stats.dense;
        report.witness_msm.ops.merge(&stats.ops);
        transcript.append_message(b"witness-commitment", &com.to_transcript_bytes());
        witness_commitments.push(com);
    }
    let witness_commitments = [
        witness_commitments[0],
        witness_commitments[1],
        witness_commitments[2],
    ];
    drop(step_span);
    report.step_seconds[0] = t0.elapsed().as_secs_f64();

    // ----- Step 2: Gate Identity (ZeroCheck) ------------------------------
    let t1 = Instant::now();
    let step_span = trace.span_with("gate-identity", "prove", &[("job", job)]);
    let mut f_gate = VirtualPolynomial::new(mu);
    let ql = f_gate.add_mle(pk.circuit.selectors()[0].clone());
    let qr = f_gate.add_mle(pk.circuit.selectors()[1].clone());
    let qm = f_gate.add_mle(pk.circuit.selectors()[2].clone());
    let qo = f_gate.add_mle(pk.circuit.selectors()[3].clone());
    let qc = f_gate.add_mle(pk.circuit.selectors()[4].clone());
    let w1 = f_gate.add_mle(witness.columns[0].clone());
    let w2 = f_gate.add_mle(witness.columns[1].clone());
    let w3 = f_gate.add_mle(witness.columns[2].clone());
    f_gate.add_term(Fr::one(), vec![ql, w1]);
    f_gate.add_term(Fr::one(), vec![qr, w2]);
    f_gate.add_term(Fr::one(), vec![qm, w1, w2]);
    f_gate.add_term(-Fr::one(), vec![qo, w3]);
    f_gate.add_term(Fr::one(), vec![qc]);
    let gate_out =
        prove_zerocheck_traced_on(&f_gate, &mut transcript, &**backend, trace, "gate-round");
    let gate_point = gate_out.sumcheck.point.clone();
    drop(step_span);
    report.step_seconds[1] = t1.elapsed().as_secs_f64();

    // ----- Step 3: Wiring Identity ----------------------------------------
    let t2 = Instant::now();
    let step_span = trace.span_with("wire-identity", "prove", &[("job", job)]);
    let beta = transcript.challenge_scalar(b"beta");
    let gamma = transcript.challenge_scalar(b"gamma");
    let ids = pk.circuit.identity_mles();
    let sigmas = pk.circuit.sigma_mles();

    // Construct N & D: six intermediate MLEs plus their products.
    let nd_span = trace.span_with("construct-nd", "prove", &[("job", job)]);
    let numerators: Vec<MultilinearPoly> = (0..3)
        .map(|j| MultilinearPoly::from_fn(mu, |i| witness.columns[j][i] + beta * ids[j][i] + gamma))
        .collect();
    let denominators: Vec<MultilinearPoly> = (0..3)
        .map(|j| {
            MultilinearPoly::from_fn(mu, |i| witness.columns[j][i] + beta * sigmas[j][i] + gamma)
        })
        .collect();
    let n_mle = numerators[0]
        .hadamard(&numerators[1])
        .hadamard(&numerators[2]);
    let d_mle = denominators[0]
        .hadamard(&denominators[1])
        .hadamard(&denominators[2]);
    drop(nd_span);

    // FracMLE and Product MLE.
    let frac_span = trace.span_with("frac-prod-mle", "prove", &[("job", job)]);
    let phi = fraction_mle(&n_mle, &d_mle);
    let pi = product_mle(&phi);
    drop(frac_span);

    // Commit φ and π (dense MSMs on the critical path): two independent
    // jobs, each splitting its windows over half the pool via the shared
    // helping scheduler.
    let job_srs = pk.srs.clone();
    let job_polys = [phi.clone(), pi.clone()];
    let job_tables = pk.commit_tables.clone();
    let job_trace = trace.clone();
    let inner = Arc::clone(backend);
    let wiring_commitments = pool::map_indices_on(&**backend, 2, move |j| {
        let _msm_span =
            job_trace.span_with("msm-wiring", "msm", &[("job", job), ("poly", j as u64)]);
        zkspeed_field::measure_modmuls(|| {
            commit_with_tables_on(&*inner, &job_srs, &job_polys[j], msm, job_tables.as_deref())
        })
    });
    let mut wiring_iter = wiring_commitments.into_iter();
    let ((phi_commitment, phi_stats), phi_muls) = wiring_iter.next().expect("two jobs");
    let ((pi_commitment, pi_stats), pi_muls) = wiring_iter.next().expect("two jobs");
    zkspeed_field::add_modmul_count(phi_muls);
    zkspeed_field::add_modmul_count(pi_muls);
    report.wiring_msm.merge(&phi_stats);
    report.wiring_msm.merge(&pi_stats);
    transcript.append_message(b"phi-commitment", &phi_commitment.to_transcript_bytes());
    transcript.append_message(b"pi-commitment", &pi_commitment.to_transcript_bytes());
    let alpha = transcript.challenge_scalar(b"alpha");

    // PermCheck ZeroCheck on Eq. (4).
    let (p1, p2) = split_even_odd(&phi, &pi);
    let mut f_perm = VirtualPolynomial::new(mu);
    let pi_idx = f_perm.add_mle(pi.clone());
    let p1_idx = f_perm.add_mle(p1);
    let p2_idx = f_perm.add_mle(p2);
    let phi_idx = f_perm.add_mle(phi.clone());
    let d_idx: Vec<usize> = denominators
        .iter()
        .map(|d| f_perm.add_mle(d.clone()))
        .collect();
    let n_idx: Vec<usize> = numerators
        .iter()
        .map(|nn| f_perm.add_mle(nn.clone()))
        .collect();
    f_perm.add_term(Fr::one(), vec![pi_idx]);
    f_perm.add_term(-Fr::one(), vec![p1_idx, p2_idx]);
    f_perm.add_term(alpha, vec![phi_idx, d_idx[0], d_idx[1], d_idx[2]]);
    f_perm.add_term(-alpha, vec![n_idx[0], n_idx[1], n_idx[2]]);
    let perm_out =
        prove_zerocheck_traced_on(&f_perm, &mut transcript, &**backend, trace, "perm-round");
    let perm_point = perm_out.sumcheck.point.clone();
    drop(step_span);
    report.step_seconds[2] = t2.elapsed().as_secs_f64();

    // ----- Step 4: Batch Evaluations ---------------------------------------
    let t3 = Instant::now();
    let step_span = trace.span_with("batch-evaluation", "prove", &[("job", job)]);
    let groups = query_groups(&gate_point, &perm_point);
    let resolve = |label: PolyLabel| -> &MultilinearPoly {
        match label {
            PolyLabel::QL => &pk.circuit.selectors()[0],
            PolyLabel::QR => &pk.circuit.selectors()[1],
            PolyLabel::QM => &pk.circuit.selectors()[2],
            PolyLabel::QO => &pk.circuit.selectors()[3],
            PolyLabel::QC => &pk.circuit.selectors()[4],
            PolyLabel::W1 => &witness.columns[0],
            PolyLabel::W2 => &witness.columns[1],
            PolyLabel::W3 => &witness.columns[2],
            PolyLabel::Sigma1 => &sigmas[0],
            PolyLabel::Sigma2 => &sigmas[1],
            PolyLabel::Sigma3 => &sigmas[2],
            PolyLabel::Phi => &phi,
            PolyLabel::Pi => &pi,
        }
    };
    // All 21 queried evaluations are independent; fan them out one job per
    // (group, label) pair and regroup in query order.
    let queries: Vec<(MultilinearPoly, Vec<Fr>)> = groups
        .iter()
        .flat_map(|g| {
            g.labels
                .iter()
                .map(|label| (resolve(*label).clone(), g.point.clone()))
        })
        .collect();
    let evaluated = pool::map_indices_on(&**backend, queries.len(), move |i| {
        let (poly, point) = &queries[i];
        zkspeed_field::measure_modmuls(|| poly.evaluate(point))
    });
    let mut flat_values = Vec::with_capacity(evaluated.len());
    for (value, muls) in evaluated {
        zkspeed_field::add_modmul_count(muls);
        flat_values.push(value);
    }
    let mut flat_iter = flat_values.into_iter();
    let evaluations = BatchEvaluations {
        values: groups
            .iter()
            .map(|g| (&mut flat_iter).take(g.labels.len()).collect())
            .collect(),
    };
    transcript.append_scalars(b"batch-evaluations", &evaluations.flatten());
    drop(step_span);
    report.step_seconds[3] = t3.elapsed().as_secs_f64();

    // ----- Step 5: Polynomial Opening --------------------------------------
    let t4 = Instant::now();
    let step_span = trace.span_with("polynomial-opening", "prove", &[("job", job)]);
    // Per-group linear combinations (MLE Combine) of the queried MLEs. The
    // transcript challenges must be drawn serially in group order, but the
    // combinations themselves fan out one job per group.
    let combine_inputs: Vec<(Vec<Fr>, Vec<MultilinearPoly>)> = groups
        .iter()
        .map(|group| {
            let e = transcript.challenge_scalar(b"rlc-challenge");
            let coeffs = powers(e, group.labels.len());
            let polys: Vec<MultilinearPoly> =
                group.labels.iter().map(|l| resolve(*l).clone()).collect();
            (coeffs, polys)
        })
        .collect();
    let combined = pool::map_indices_on(&**backend, combine_inputs.len(), move |i| {
        let (coeffs, polys) = &combine_inputs[i];
        zkspeed_field::measure_modmuls(|| {
            let refs: Vec<&MultilinearPoly> = polys.iter().collect();
            MultilinearPoly::linear_combination(coeffs, &refs)
        })
    });
    let mut combined_polys = Vec::with_capacity(groups.len());
    for (poly, muls) in combined {
        zkspeed_field::add_modmul_count(muls);
        combined_polys.push(poly);
    }
    // OpenCheck: Σ_i cⁱ · yᵢ(x) · kᵢ(x) summed over the hypercube equals the
    // combined claimed evaluations.
    let c = transcript.challenge_scalar(b"opencheck-combine");
    let c_powers = powers(c, groups.len());
    let mut f_open = VirtualPolynomial::new(mu);
    for (group, (y, cp)) in groups
        .iter()
        .zip(combined_polys.iter().zip(c_powers.iter()))
    {
        let y_idx = f_open.add_mle(y.clone());
        let k_idx = f_open.add_mle(MultilinearPoly::eq_mle_on(&group.point, &**backend));
        f_open.add_term(*cp, vec![y_idx, k_idx]);
    }
    let open_out =
        sumcheck_prove_traced_on(&f_open, &mut transcript, &**backend, trace, "open-round");
    let rho = open_out.point.clone();

    // Claimed evaluations of the combined polynomials at ρ: one job each.
    let eval_polys = combined_polys.clone();
    let eval_rho = rho.clone();
    let evaluated = pool::map_indices_on(&**backend, combined_polys.len(), move |i| {
        zkspeed_field::measure_modmuls(|| eval_polys[i].evaluate(&eval_rho))
    });
    let mut combined_evaluations = Vec::with_capacity(combined_polys.len());
    for (value, muls) in evaluated {
        zkspeed_field::add_modmul_count(muls);
        combined_evaluations.push(value);
    }
    transcript.append_scalars(b"combined-evaluations", &combined_evaluations);

    // Final combination g′ and its halving-MSM opening.
    let d = transcript.challenge_scalars(b"gprime-challenge", groups.len());
    let gprime =
        MultilinearPoly::linear_combination(&d, &combined_polys.iter().collect::<Vec<_>>());
    let (gprime_value, gprime_opening, open_stats) = {
        let _msm_span = trace.span_with("msm-opening", "msm", &[("job", job)]);
        open_with_tables_on(
            &**backend,
            &pk.srs,
            &gprime,
            &rho,
            msm,
            pk.commit_tables.as_deref(),
        )
    };
    report.opening_msm.merge(&open_stats);
    debug_assert_eq!(
        gprime_value,
        d.iter()
            .zip(combined_evaluations.iter())
            .map(|(di, yi)| *di * *yi)
            .sum::<Fr>()
    );
    drop(step_span);
    report.step_seconds[4] = t4.elapsed().as_secs_f64();
    report.transcript_hashes = transcript.hash_invocations();

    (
        Proof {
            witness_commitments,
            gate_zerocheck: gate_out.sumcheck.proof,
            phi_commitment,
            pi_commitment,
            perm_zerocheck: perm_out.sumcheck.proof,
            evaluations,
            opencheck: open_out.proof,
            combined_evaluations,
            gprime_opening,
        },
        report,
    )
}

/// Returns `[1, base, base², …]` with `count` entries.
pub(crate) fn powers(base: Fr, count: usize) -> Vec<Fr> {
    let mut out = Vec::with_capacity(count);
    let mut acc = Fr::one();
    for _ in 0..count {
        out.push(acc);
        acc *= base;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::try_preprocess;
    use crate::mock::{mock_circuit, SparsityProfile};
    use zkspeed_pcs::Srs;
    use zkspeed_rt::rngs::StdRng;
    use zkspeed_rt::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed_0010)
    }

    fn backend() -> Arc<dyn Backend> {
        pool::ambient()
    }

    #[test]
    fn powers_helper() {
        let p = powers(Fr::from_u64(3), 4);
        assert_eq!(
            p,
            vec![
                Fr::one(),
                Fr::from_u64(3),
                Fr::from_u64(9),
                Fr::from_u64(27)
            ]
        );
        assert!(powers(Fr::one(), 0).is_empty());
    }

    #[test]
    fn prover_produces_well_formed_proof() {
        let mut r = rng();
        let mu = 4;
        let srs = Srs::setup(mu, &mut r);
        let (circuit, witness) = mock_circuit(mu, SparsityProfile::paper_default(), &mut r);
        let (pk, _vk) = try_preprocess(circuit, &srs).expect("circuit fits");
        let (proof, report) =
            prove_with_report_on(&pk, &witness, &backend()).expect("valid witness");
        assert_eq!(proof.gate_zerocheck.num_rounds(), mu);
        assert_eq!(proof.perm_zerocheck.num_rounds(), mu);
        assert_eq!(proof.opencheck.num_rounds(), mu);
        assert_eq!(proof.evaluations.total(), 21);
        assert_eq!(proof.combined_evaluations.len(), 5);
        assert_eq!(proof.gprime_opening.size_in_points(), mu);
        assert!(proof.size_in_bytes() > 0);
        // Report sanity.
        assert_eq!(report.num_vars, mu);
        assert!(report.total_seconds() > 0.0);
        assert!(report.transcript_hashes > 0);
        assert_eq!(
            report.witness_msm.zeros + report.witness_msm.ones + report.witness_msm.dense,
            3 * (1 << mu)
        );
        assert!(report.seconds(ProtocolStep::WitnessCommit) >= 0.0);
    }

    #[test]
    fn unsatisfied_witness_is_rejected_by_prover() {
        let mut r = rng();
        let mu = 3;
        let srs = Srs::setup(mu, &mut r);
        let (circuit, mut witness) = mock_circuit(mu, SparsityProfile::paper_default(), &mut r);
        let (pk, _vk) = try_preprocess(circuit, &srs).expect("circuit fits");
        witness.columns[2].evaluations_mut()[1] += Fr::one();
        assert!(matches!(
            prove_on(&pk, &witness, &backend()),
            Err(ProveError::UnsatisfiedWitness(_))
        ));
        // prove_unchecked_on still produces a (bogus) proof object.
        let (proof, _) = prove_unchecked_on(&pk, &witness, &backend());
        assert_eq!(proof.gate_zerocheck.num_rounds(), mu);
    }

    #[test]
    fn batch_proving_matches_individual_proofs() {
        let mut r = rng();
        let mu = 4;
        let srs = Srs::setup(mu, &mut r);
        let (circuit, witness) = mock_circuit(mu, SparsityProfile::paper_default(), &mut r);
        let (pk, _vk) = try_preprocess(circuit, &srs).expect("circuit fits");
        let witnesses = vec![witness.clone(), witness.clone(), witness];
        let batch = prove_batch_on(&pk, &witnesses, &backend()).expect("valid witnesses");
        assert_eq!(batch.len(), 3);
        let single = prove_on(&pk, &witnesses[0], &backend()).expect("valid witness");
        for proof in &batch {
            assert_eq!(*proof, single, "batch proofs must match individual runs");
        }
        // An invalid witness anywhere in the batch fails the whole call.
        let mut bad = witnesses.clone();
        bad[1].columns[2].evaluations_mut()[0] += Fr::one();
        assert!(matches!(
            prove_batch_on(&pk, &bad, &backend()),
            Err(ProveError::UnsatisfiedWitness(_))
        ));
    }

    #[test]
    fn msm_configs_produce_identical_proofs() {
        let mut r = rng();
        let mu = 4;
        let srs = Srs::setup(mu, &mut r);
        let (circuit, witness) = mock_circuit(mu, SparsityProfile::paper_default(), &mut r);
        let (pk, _vk) = try_preprocess(circuit, &srs).expect("circuit fits");
        let (reference, _) = prove_with_report_msm_on(
            &pk,
            &witness,
            &backend(),
            zkspeed_curve::MsmConfig::classic(),
        )
        .expect("valid witness");
        let (optimized, _) = prove_with_report_msm_on(
            &pk,
            &witness,
            &backend(),
            zkspeed_curve::MsmConfig::optimized(),
        )
        .expect("valid witness");
        assert_eq!(optimized, reference);
    }

    #[test]
    fn tracing_produces_byte_identical_proofs() {
        let mut r = rng();
        let mu = 4;
        let srs = Srs::setup(mu, &mut r);
        let (circuit, witness) = mock_circuit(mu, SparsityProfile::paper_default(), &mut r);
        let (pk, _vk) = try_preprocess(circuit, &srs).expect("circuit fits");
        let witnesses = vec![witness.clone(), witness];
        let plain = prove_batch_with_reports_msm_on(
            &pk,
            &witnesses,
            &backend(),
            zkspeed_curve::MsmConfig::default(),
        )
        .expect("valid witnesses");
        let sink = zkspeed_rt::trace::TraceSink::enabled();
        let traced = prove_batch_with_reports_traced_on(
            &pk,
            &witnesses,
            &backend(),
            zkspeed_curve::MsmConfig::default(),
            &sink,
            &[41, 42],
        )
        .expect("valid witnesses");
        for ((p, _), (t, _)) in plain.iter().zip(traced.iter()) {
            assert_eq!(
                p.to_bytes(),
                t.to_bytes(),
                "tracing must not perturb the proof"
            );
        }
        // The recording actually covers the span tree: protocol steps,
        // sumcheck rounds and MSM passes, tagged with the job ids.
        let events: Vec<_> = sink.threads().into_iter().flat_map(|t| t.events).collect();
        for name in [
            "witness-commit",
            "gate-identity",
            "wire-identity",
            "batch-evaluation",
            "polynomial-opening",
            "gate-round",
            "perm-round",
            "open-round",
            "msm-witness",
            "msm-wiring",
            "msm-opening",
        ] {
            assert!(events.iter().any(|e| e.name == name), "missing span {name}");
        }
        assert!(events
            .iter()
            .any(|e| e.args.as_slice().contains(&("job", 42))));
    }

    #[test]
    fn step_names_are_stable() {
        assert_eq!(ProtocolStep::ALL.len(), 5);
        assert_eq!(ProtocolStep::WitnessCommit.name(), "Witness Commits");
        assert_eq!(ProtocolStep::PolynomialOpening.name(), "Poly Open");
    }
}
