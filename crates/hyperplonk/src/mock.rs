//! Synthetic circuit workloads.
//!
//! The zkSpeed paper (Section 6.2) evaluates on mock circuits, because the
//! prover's runtime depends only on the problem size and — for the Witness
//! Commit step — on the witness sparsity statistics. This module generates
//! satisfied circuits of a requested size with the paper's statistics
//! (≈45% zero, ≈45% one, ≈10% full-width witness values) and lists the five
//! named workloads of Table 3.

use zkspeed_field::Fr;
use zkspeed_poly::MultilinearPoly;
use zkspeed_rt::Rng;

use crate::circuit::{Circuit, GateSelectors, Witness};

/// The witness sparsity profile used when generating mock circuits.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SparsityProfile {
    /// Fraction of witness values forced to zero.
    pub zeros: f64,
    /// Fraction of witness values forced to one.
    pub ones: f64,
}

impl SparsityProfile {
    /// The paper's pessimistic assumption: 45% zeros, 45% ones, 10% dense.
    pub fn paper_default() -> Self {
        Self {
            zeros: 0.45,
            ones: 0.45,
        }
    }

    /// A fully dense witness (no sparsity).
    pub fn dense() -> Self {
        Self {
            zeros: 0.0,
            ones: 0.0,
        }
    }
}

/// A named real-world workload from Table 3 of the paper.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct NamedWorkload {
    /// Human-readable name.
    pub name: &'static str,
    /// `μ`: the workload proves a circuit with `2^μ` gates.
    pub num_vars: usize,
    /// CPU runtime reported by the paper, in milliseconds.
    pub paper_cpu_ms: f64,
    /// zkSpeed runtime reported by the paper, in milliseconds.
    pub paper_zkspeed_ms: f64,
}

/// The five workloads of Table 3.
pub const NAMED_WORKLOADS: [NamedWorkload; 5] = [
    NamedWorkload {
        name: "Zcash",
        num_vars: 17,
        paper_cpu_ms: 1429.0,
        paper_zkspeed_ms: 1.984,
    },
    NamedWorkload {
        name: "Auction",
        num_vars: 20,
        paper_cpu_ms: 8619.0,
        paper_zkspeed_ms: 11.405,
    },
    NamedWorkload {
        name: "2^12 Rescue-Hash Invocations",
        num_vars: 21,
        paper_cpu_ms: 18637.0,
        paper_zkspeed_ms: 22.082,
    },
    NamedWorkload {
        name: "Zexe's Recursive Circuit",
        num_vars: 22,
        paper_cpu_ms: 37469.0,
        paper_zkspeed_ms: 43.451,
    },
    NamedWorkload {
        name: "Rollup of 10 Pvt Tx",
        num_vars: 23,
        paper_cpu_ms: 74052.0,
        paper_zkspeed_ms: 86.181,
    },
];

/// Generates a satisfied mock circuit with `2^num_vars` gates and the
/// requested witness sparsity.
///
/// Gates are a mix of additions, multiplications and constants whose inputs
/// are drawn from the sparsity profile; a non-trivial wiring permutation is
/// built by rotating the slots that hold the (plentiful) values 0 and 1.
///
/// # Panics
///
/// Panics if `num_vars == 0`.
pub fn mock_circuit<R: Rng + ?Sized>(
    num_vars: usize,
    profile: SparsityProfile,
    rng: &mut R,
) -> (Circuit, Witness) {
    assert!(num_vars > 0, "mock_circuit: need at least one variable");
    let n = 1usize << num_vars;
    let mut gates = Vec::with_capacity(n);
    let mut w1 = Vec::with_capacity(n);
    let mut w2 = Vec::with_capacity(n);
    let mut w3 = Vec::with_capacity(n);

    let sample_value = |rng: &mut R| -> Fr {
        let roll: f64 = rng.gen();
        if roll < profile.zeros {
            Fr::zero()
        } else if roll < profile.zeros + profile.ones {
            Fr::one()
        } else {
            Fr::random(rng)
        }
    };

    for _ in 0..n {
        let a = sample_value(rng);
        let b = sample_value(rng);
        let kind: f64 = rng.gen();
        if kind < 0.45 {
            gates.push(GateSelectors::addition());
            w1.push(a);
            w2.push(b);
            w3.push(a + b);
        } else if kind < 0.9 {
            gates.push(GateSelectors::multiplication());
            w1.push(a);
            w2.push(b);
            w3.push(a * b);
        } else {
            let c = sample_value(rng);
            gates.push(GateSelectors::constant(c));
            w1.push(a);
            w2.push(b);
            w3.push(c);
        }
    }

    // Build a non-trivial wiring permutation by rotating all slots holding
    // value 0 and all slots holding value 1 (values are preserved, so the
    // witness remains valid).
    let all_values = [&w1, &w2, &w3];
    let mut zero_slots = Vec::new();
    let mut one_slots = Vec::new();
    for (j, col) in all_values.iter().enumerate() {
        for (i, v) in col.iter().enumerate() {
            if v.is_zero() {
                zero_slots.push(j * n + i);
            } else if v.is_one() {
                one_slots.push(j * n + i);
            }
        }
    }
    let mut sigma: Vec<usize> = (0..3 * n).collect();
    for group in [zero_slots, one_slots] {
        if group.len() > 1 {
            for (i, &slot) in group.iter().enumerate() {
                sigma[slot] = group[(i + 1) % group.len()];
            }
        }
    }

    let circuit = Circuit::new(&gates, sigma);
    let witness = Witness::new(
        MultilinearPoly::new(w1),
        MultilinearPoly::new(w2),
        MultilinearPoly::new(w3),
    );
    debug_assert!(circuit.check_witness(&witness).is_ok());
    (circuit, witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkspeed_rt::rngs::StdRng;
    use zkspeed_rt::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed_000e)
    }

    #[test]
    fn mock_circuit_is_satisfied() {
        let mut r = rng();
        for mu in [1usize, 3, 6, 8] {
            let (circuit, witness) = mock_circuit(mu, SparsityProfile::paper_default(), &mut r);
            assert_eq!(circuit.num_vars(), mu);
            assert!(circuit.check_witness(&witness).is_ok(), "mu = {mu}");
        }
    }

    #[test]
    fn sparsity_profile_is_respected() {
        let mut r = rng();
        let (_, witness) = mock_circuit(9, SparsityProfile::paper_default(), &mut r);
        // Expect ≈90% sparse; allow generous slack (w3 of addition gates can
        // densify: 1+1=2, random+random, etc.).
        let s = witness.sparsity();
        assert!(s > 0.6, "sparsity {s} unexpectedly low");
        let (_, dense_witness) = mock_circuit(9, SparsityProfile::dense(), &mut r);
        assert!(dense_witness.sparsity() < 0.05);
    }

    #[test]
    fn mock_circuit_has_nontrivial_wiring() {
        let mut r = rng();
        let (circuit, _) = mock_circuit(6, SparsityProfile::paper_default(), &mut r);
        let n = circuit.num_gates();
        let moved = (0..3)
            .flat_map(|j| (0..n).map(move |i| (j, i)))
            .filter(|&(j, i)| circuit.sigma_slot(j, i) != j * n + i)
            .count();
        assert!(moved > n, "expected many wired slots, got {moved}");
    }

    #[test]
    fn named_workloads_match_paper_table() {
        assert_eq!(NAMED_WORKLOADS.len(), 5);
        assert_eq!(NAMED_WORKLOADS[0].name, "Zcash");
        assert_eq!(NAMED_WORKLOADS[0].num_vars, 17);
        assert_eq!(NAMED_WORKLOADS[4].num_vars, 23);
        // Paper speedups are in the 700–900× range.
        for w in NAMED_WORKLOADS.iter() {
            let speedup = w.paper_cpu_ms / w.paper_zkspeed_ms;
            assert!(speedup > 700.0 && speedup < 900.0, "{}", w.name);
        }
    }
}
