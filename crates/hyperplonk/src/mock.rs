//! Synthetic circuit workloads.
//!
//! The zkSpeed paper (Section 6.2) evaluates on mock circuits, because the
//! prover's runtime depends only on the problem size and — for the Witness
//! Commit step — on the witness sparsity statistics. This module generates
//! satisfied circuits of a requested size with the paper's statistics
//! (≈45% zero, ≈45% one, ≈10% full-width witness values) and lists the five
//! named workloads of Table 3.

use zkspeed_field::Fr;
use zkspeed_poly::MultilinearPoly;
use zkspeed_rt::Rng;

use crate::circuit::{Circuit, GateSelectors, Witness};

/// The witness sparsity profile used when generating mock circuits.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SparsityProfile {
    /// Fraction of witness values forced to zero.
    pub zeros: f64,
    /// Fraction of witness values forced to one.
    pub ones: f64,
}

impl SparsityProfile {
    /// The paper's pessimistic assumption: 45% zeros, 45% ones, 10% dense.
    pub fn paper_default() -> Self {
        Self {
            zeros: 0.45,
            ones: 0.45,
        }
    }

    /// A fully dense witness (no sparsity).
    pub fn dense() -> Self {
        Self {
            zeros: 0.0,
            ones: 0.0,
        }
    }

    /// Every witness value is zero.
    pub fn all_zero() -> Self {
        Self {
            zeros: 1.0,
            ones: 0.0,
        }
    }

    /// Every witness value is one.
    pub fn all_one() -> Self {
        Self {
            zeros: 0.0,
            ones: 1.0,
        }
    }

    /// A zero-heavy split far from the paper default (70/20/10).
    pub fn skewed() -> Self {
        Self {
            zeros: 0.7,
            ones: 0.2,
        }
    }

    /// All named profile variants with their display names, for
    /// profile-sweep tests and benches.
    pub fn variants() -> [(&'static str, SparsityProfile); 5] {
        [
            ("paper-default", Self::paper_default()),
            ("dense", Self::dense()),
            ("all-zero", Self::all_zero()),
            ("all-one", Self::all_one()),
            ("skewed", Self::skewed()),
        ]
    }

    /// Fraction of dense (non-0/1) values.
    pub fn dense_fraction(&self) -> f64 {
        1.0 - self.zeros - self.ones
    }
}

/// A witness value category drawn from a [`SparsityProfile`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Category {
    Zero,
    One,
    Dense,
}

impl Category {
    fn of(v: &Fr) -> Self {
        if v.is_zero() {
            Category::Zero
        } else if v.is_one() {
            Category::One
        } else {
            Category::Dense
        }
    }

    fn materialize<R: Rng + ?Sized>(self, rng: &mut R) -> Fr {
        match self {
            Category::Zero => Fr::zero(),
            Category::One => Fr::one(),
            // A uniform field element is 0 or 1 with probability ≈ 2^-254;
            // the tight sparsity tests tolerate far more than that.
            Category::Dense => Fr::random(rng),
        }
    }

    const ALL: [Category; 3] = [Category::Zero, Category::One, Category::Dense];
}

/// A shuffled deck of `n` value categories whose counts match `profile`
/// exactly (largest-remainder rounding), so dealt columns hit the profile
/// to within `1/n`.
fn category_deck<R: Rng + ?Sized>(
    profile: SparsityProfile,
    n: usize,
    rng: &mut R,
) -> Vec<Category> {
    let targets = [
        n as f64 * profile.zeros,
        n as f64 * profile.ones,
        n as f64 * profile.dense_fraction(),
    ];
    let mut counts = targets.map(|t| t.floor() as usize);
    let mut order = [0usize, 1, 2];
    order.sort_by(|&a, &b| {
        let ra = targets[a] - targets[a].floor();
        let rb = targets[b] - targets[b].floor();
        rb.partial_cmp(&ra).unwrap_or(core::cmp::Ordering::Equal)
    });
    let assigned: usize = counts.iter().sum();
    for &idx in order.iter().take(n.saturating_sub(assigned)) {
        counts[idx] += 1;
    }
    let mut deck = Vec::with_capacity(n);
    for (cat, &count) in Category::ALL.iter().zip(counts.iter()) {
        deck.extend((0..count).map(|_| *cat));
    }
    // Fisher–Yates shuffle.
    for i in (1..deck.len()).rev() {
        let j = rng.gen_range(0..(i + 1) as u64) as usize;
        deck.swap(i, j);
    }
    deck
}

/// A named real-world workload from Table 3 of the paper.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct NamedWorkload {
    /// Human-readable name.
    pub name: &'static str,
    /// `μ`: the workload proves a circuit with `2^μ` gates.
    pub num_vars: usize,
    /// CPU runtime reported by the paper, in milliseconds.
    pub paper_cpu_ms: f64,
    /// zkSpeed runtime reported by the paper, in milliseconds.
    pub paper_zkspeed_ms: f64,
}

/// The five workloads of Table 3.
pub const NAMED_WORKLOADS: [NamedWorkload; 5] = [
    NamedWorkload {
        name: "Zcash",
        num_vars: 17,
        paper_cpu_ms: 1429.0,
        paper_zkspeed_ms: 1.984,
    },
    NamedWorkload {
        name: "Auction",
        num_vars: 20,
        paper_cpu_ms: 8619.0,
        paper_zkspeed_ms: 11.405,
    },
    NamedWorkload {
        name: "2^12 Rescue-Hash Invocations",
        num_vars: 21,
        paper_cpu_ms: 18637.0,
        paper_zkspeed_ms: 22.082,
    },
    NamedWorkload {
        name: "Zexe's Recursive Circuit",
        num_vars: 22,
        paper_cpu_ms: 37469.0,
        paper_zkspeed_ms: 43.451,
    },
    NamedWorkload {
        name: "Rollup of 10 Pvt Tx",
        num_vars: 23,
        paper_cpu_ms: 74052.0,
        paper_zkspeed_ms: 86.181,
    },
];

/// Generates a satisfied mock circuit with `2^num_vars` gates and the
/// requested witness sparsity.
///
/// The input columns `w₁, w₂` are dealt from shuffled decks with **exact**
/// per-profile category counts, and each gate's kind (addition,
/// multiplication or constant) is chosen so the output column `w₃` tracks
/// the profile too: the gate whose output supplies the currently
/// neediest category wins, with a constant gate (free choice of output)
/// as the fallback. Every column therefore matches the profile to within
/// a couple of gates — the contract the tightened sparsity tests assert.
/// A non-trivial wiring permutation is built by rotating the slots that
/// hold the (plentiful) values 0 and 1.
///
/// # Panics
///
/// Panics if `num_vars == 0` or the profile fractions are not in `[0, 1]`
/// with `zeros + ones ≤ 1`.
pub fn mock_circuit<R: Rng + ?Sized>(
    num_vars: usize,
    profile: SparsityProfile,
    rng: &mut R,
) -> (Circuit, Witness) {
    assert!(num_vars > 0, "mock_circuit: need at least one variable");
    assert!(
        profile.zeros >= 0.0 && profile.ones >= 0.0 && profile.zeros + profile.ones <= 1.0 + 1e-12,
        "mock_circuit: invalid sparsity profile {profile:?}"
    );
    let n = 1usize << num_vars;
    let mut gates = Vec::with_capacity(n);
    let mut w1 = Vec::with_capacity(n);
    let mut w2 = Vec::with_capacity(n);
    let mut w3 = Vec::with_capacity(n);

    let deck1 = category_deck(profile, n, rng);
    let deck2 = category_deck(profile, n, rng);
    let targets = [profile.zeros, profile.ones, profile.dense_fraction()];
    let mut produced = [0usize; 3];

    for i in 0..n {
        let a = deck1[i].materialize(rng);
        let b = deck2[i].materialize(rng);
        let sum = a + b;
        let prod = a * b;
        // The output category the column needs most right now.
        let deficit = |cat: usize, produced: &[usize; 3]| {
            targets[cat] * (i + 1) as f64 - produced[cat] as f64
        };
        let needed = (0..3)
            .max_by(|&x, &y| {
                deficit(x, &produced)
                    .partial_cmp(&deficit(y, &produced))
                    .unwrap_or(core::cmp::Ordering::Equal)
            })
            .expect("three categories");
        let add_matches = Category::of(&sum) == Category::ALL[needed];
        let mul_matches = Category::of(&prod) == Category::ALL[needed];
        let (selectors, out) = if add_matches && (!mul_matches || rng.gen_bool(0.5)) {
            (GateSelectors::addition(), sum)
        } else if mul_matches {
            (GateSelectors::multiplication(), prod)
        } else {
            // Neither arithmetic gate supplies the needed category: a
            // constant gate can always produce it exactly.
            let c = Category::ALL[needed].materialize(rng);
            (GateSelectors::constant(c), c)
        };
        produced[Category::of(&out) as usize] += 1;
        gates.push(selectors);
        w1.push(a);
        w2.push(b);
        w3.push(out);
    }

    // Build a non-trivial wiring permutation by rotating all slots holding
    // value 0 and all slots holding value 1 (values are preserved, so the
    // witness remains valid).
    let all_values = [&w1, &w2, &w3];
    let mut zero_slots = Vec::new();
    let mut one_slots = Vec::new();
    for (j, col) in all_values.iter().enumerate() {
        for (i, v) in col.iter().enumerate() {
            if v.is_zero() {
                zero_slots.push(j * n + i);
            } else if v.is_one() {
                one_slots.push(j * n + i);
            }
        }
    }
    let mut sigma: Vec<usize> = (0..3 * n).collect();
    for group in [zero_slots, one_slots] {
        if group.len() > 1 {
            for (i, &slot) in group.iter().enumerate() {
                sigma[slot] = group[(i + 1) % group.len()];
            }
        }
    }

    let circuit = Circuit::new(&gates, sigma);
    let witness = Witness::new(
        MultilinearPoly::new(w1),
        MultilinearPoly::new(w2),
        MultilinearPoly::new(w3),
    );
    debug_assert!(circuit.check_witness(&witness).is_ok());
    (circuit, witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkspeed_rt::rngs::StdRng;
    use zkspeed_rt::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed_000e)
    }

    #[test]
    fn mock_circuit_is_satisfied() {
        let mut r = rng();
        for mu in [1usize, 3, 6, 8] {
            let (circuit, witness) = mock_circuit(mu, SparsityProfile::paper_default(), &mut r);
            assert_eq!(circuit.num_vars(), mu);
            assert!(circuit.check_witness(&witness).is_ok(), "mu = {mu}");
        }
    }

    #[test]
    fn every_profile_variant_is_respected_within_tight_tolerance() {
        // The old generator only guaranteed `sparsity > 0.6` because the
        // output column drifted from the profile; the deck-based generator
        // pins every column. 2/n of slack covers deck rounding plus the
        // greedy output steering's ±1 lag.
        let mut r = rng();
        for mu in [6usize, 9] {
            let n = 1usize << mu;
            let tol = 2.0 / n as f64 + 1e-9;
            for (name, profile) in SparsityProfile::variants() {
                let (circuit, witness) = mock_circuit(mu, profile, &mut r);
                assert!(circuit.check_witness(&witness).is_ok(), "{name}");
                for (j, col) in witness.columns.iter().enumerate() {
                    let values = col.evaluations();
                    let zeros = values.iter().filter(|v| v.is_zero()).count() as f64 / n as f64;
                    let ones = values.iter().filter(|v| v.is_one()).count() as f64 / n as f64;
                    assert!(
                        (zeros - profile.zeros).abs() <= tol,
                        "{name} mu={mu} col {j}: zero fraction {zeros} vs {}",
                        profile.zeros
                    );
                    assert!(
                        (ones - profile.ones).abs() <= tol,
                        "{name} mu={mu} col {j}: one fraction {ones} vs {}",
                        profile.ones
                    );
                }
            }
        }
    }

    #[test]
    fn dense_and_degenerate_profiles() {
        let mut r = rng();
        let (_, dense_witness) = mock_circuit(9, SparsityProfile::dense(), &mut r);
        assert!(dense_witness.sparsity() < 1e-9);
        let (_, zero_witness) = mock_circuit(5, SparsityProfile::all_zero(), &mut r);
        assert!((zero_witness.sparsity() - 1.0).abs() < 1e-9);
        let (_, one_witness) = mock_circuit(5, SparsityProfile::all_one(), &mut r);
        assert!((one_witness.sparsity() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid sparsity profile")]
    fn over_full_profile_is_rejected() {
        let mut r = rng();
        let _ = mock_circuit(
            4,
            SparsityProfile {
                zeros: 0.8,
                ones: 0.5,
            },
            &mut r,
        );
    }

    #[test]
    fn mock_circuit_has_nontrivial_wiring() {
        let mut r = rng();
        let (circuit, _) = mock_circuit(6, SparsityProfile::paper_default(), &mut r);
        let n = circuit.num_gates();
        let moved = (0..3)
            .flat_map(|j| (0..n).map(move |i| (j, i)))
            .filter(|&(j, i)| circuit.sigma_slot(j, i) != j * n + i)
            .count();
        assert!(moved > n, "expected many wired slots, got {moved}");
    }

    #[test]
    fn named_workloads_match_paper_table() {
        assert_eq!(NAMED_WORKLOADS.len(), 5);
        assert_eq!(NAMED_WORKLOADS[0].name, "Zcash");
        assert_eq!(NAMED_WORKLOADS[0].num_vars, 17);
        assert_eq!(NAMED_WORKLOADS[4].num_vars, 23);
        // Paper speedups are in the 700–900× range.
        for w in NAMED_WORKLOADS.iter() {
            let speedup = w.paper_cpu_ms / w.paper_zkspeed_ms;
            assert!(speedup > 700.0 && speedup < 900.0, "{}", w.name);
        }
    }
}
