//! Measured circuit statistics.
//!
//! The zkSpeed hardware model (Section 6.2 of the paper) is driven by
//! witness sparsity statistics; historically this repo fed it the paper's
//! *assumed* 45/45/10 zero/one/dense split. [`CircuitStats::measure`]
//! extracts the **real** statistics of a compiled circuit and witness —
//! per-column zero/one/dense counts, selector densities and the gate-kind
//! mix — so `zkspeed_core::Workload` can be built from measured circuits
//! (see `zkspeed::measured_workload` in the umbrella crate).

use zkspeed_field::Fr;
use zkspeed_rt::{JsonValue, ToJson};

use crate::circuit::{Circuit, GateSelectors, Witness};

/// Zero/one/dense scalar counts of one witness column.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ColumnStats {
    /// Scalars that are exactly zero (skipped by the Sparse MSM).
    pub zeros: usize,
    /// Scalars that are exactly one (tree-added by the Sparse MSM).
    pub ones: usize,
    /// Full-width scalars (Pippenger path).
    pub dense: usize,
}

impl ColumnStats {
    /// Total scalars in the column.
    pub fn total(&self) -> usize {
        self.zeros + self.ones + self.dense
    }

    /// Fraction of zeros.
    pub fn zero_fraction(&self) -> f64 {
        self.zeros as f64 / self.total().max(1) as f64
    }

    /// Fraction of ones.
    pub fn one_fraction(&self) -> f64 {
        self.ones as f64 / self.total().max(1) as f64
    }

    /// Fraction of dense scalars.
    pub fn dense_fraction(&self) -> f64 {
        self.dense as f64 / self.total().max(1) as f64
    }

    fn measure(values: &[Fr]) -> Self {
        let mut stats = Self::default();
        for v in values {
            if v.is_zero() {
                stats.zeros += 1;
            } else if v.is_one() {
                stats.ones += 1;
            } else {
                stats.dense += 1;
            }
        }
        stats
    }
}

/// How many gates of each kind a circuit contains, classified from the
/// selector patterns of Eq. (1).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct GateKindCounts {
    /// `w₁ + w₂ = w₃` gates.
    pub additions: usize,
    /// `w₁ · w₂ = w₃` gates.
    pub multiplications: usize,
    /// `w₃ = c` gates.
    pub constants: usize,
    /// Gates with `q_M = 0` not matching a named pattern (scaled adds,
    /// equality/range constraints, NOT gates, …).
    pub linear: usize,
    /// Gates with `q_M ≠ 0` not matching a named pattern (XOR, AND-NOT,
    /// boolean constraints, …).
    pub nonlinear: usize,
    /// All-zero-selector padding/input rows.
    pub noops: usize,
}

impl GateKindCounts {
    fn classify(&mut self, g: &GateSelectors) {
        let noop = GateSelectors::noop();
        if *g == noop {
            self.noops += 1;
        } else if *g == GateSelectors::addition() {
            self.additions += 1;
        } else if *g == GateSelectors::multiplication() {
            self.multiplications += 1;
        } else if *g == GateSelectors::constant(g.q_c) {
            // Includes constant-zero gates (`q_O = 1`, `q_C = 0`): unlike
            // noop rows they actively constrain `w₃ = 0`.
            self.constants += 1;
        } else if g.q_m.is_zero() {
            self.linear += 1;
        } else {
            self.nonlinear += 1;
        }
    }
}

/// Measured statistics of one compiled circuit plus witness: the numbers
/// that drive the hardware model instead of the paper's assumptions.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CircuitStats {
    /// `μ`: the circuit has `2^μ` gates (after padding).
    pub num_vars: usize,
    /// Number of gates `2^μ`.
    pub num_gates: usize,
    /// Per-column witness sparsity counts (`w₁`, `w₂`, `w₃`).
    pub columns: [ColumnStats; 3],
    /// Fraction of nonzero rows per selector MLE, in `q_L, q_R, q_M, q_O,
    /// q_C` order.
    pub selector_density: [f64; 5],
    /// Gate-kind mix.
    pub gate_kinds: GateKindCounts,
}

impl CircuitStats {
    /// Measures a compiled circuit and a satisfying witness.
    ///
    /// # Panics
    ///
    /// Panics if the witness size does not match the circuit.
    pub fn measure(circuit: &Circuit, witness: &Witness) -> Self {
        let n = circuit.num_gates();
        assert_eq!(
            witness.columns[0].evaluations().len(),
            n,
            "witness does not match circuit"
        );
        let columns = [0, 1, 2].map(|j| ColumnStats::measure(witness.columns[j].evaluations()));
        let selector_density = core::array::from_fn(|s| {
            let nonzero = circuit.selectors()[s]
                .evaluations()
                .iter()
                .filter(|v| !v.is_zero())
                .count();
            nonzero as f64 / n as f64
        });
        let mut gate_kinds = GateKindCounts::default();
        for i in 0..n {
            gate_kinds.classify(&circuit.gate(i));
        }
        Self {
            num_vars: circuit.num_vars(),
            num_gates: n,
            columns,
            selector_density,
            gate_kinds,
        }
    }

    /// Whole-witness zero fraction (across all three columns).
    pub fn zero_fraction(&self) -> f64 {
        let total: usize = self.columns.iter().map(ColumnStats::total).sum();
        let zeros: usize = self.columns.iter().map(|c| c.zeros).sum();
        zeros as f64 / total.max(1) as f64
    }

    /// Whole-witness one fraction.
    pub fn one_fraction(&self) -> f64 {
        let total: usize = self.columns.iter().map(ColumnStats::total).sum();
        let ones: usize = self.columns.iter().map(|c| c.ones).sum();
        ones as f64 / total.max(1) as f64
    }

    /// Whole-witness dense fraction.
    pub fn dense_fraction(&self) -> f64 {
        let total: usize = self.columns.iter().map(ColumnStats::total).sum();
        let dense: usize = self.columns.iter().map(|c| c.dense).sum();
        dense as f64 / total.max(1) as f64
    }

    /// Fraction of witness values that are zero or one — the statistic the
    /// paper assumes is ≈90% (same definition as [`Witness::sparsity`]).
    pub fn sparsity(&self) -> f64 {
        self.zero_fraction() + self.one_fraction()
    }
}

impl ToJson for ColumnStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("zeros".into(), JsonValue::UInt(self.zeros as u64)),
            ("ones".into(), JsonValue::UInt(self.ones as u64)),
            ("dense".into(), JsonValue::UInt(self.dense as u64)),
            ("zero_fraction".into(), self.zero_fraction().to_json()),
            ("one_fraction".into(), self.one_fraction().to_json()),
        ])
    }
}

zkspeed_rt::impl_to_json_struct!(GateKindCounts {
    additions,
    multiplications,
    constants,
    linear,
    nonlinear,
    noops,
});

impl ToJson for CircuitStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("num_vars".into(), JsonValue::UInt(self.num_vars as u64)),
            ("num_gates".into(), JsonValue::UInt(self.num_gates as u64)),
            ("columns".into(), self.columns.to_json()),
            ("selector_density".into(), self.selector_density.to_json()),
            ("gate_kinds".into(), self.gate_kinds.to_json()),
            ("zero_fraction".into(), self.zero_fraction().to_json()),
            ("one_fraction".into(), self.one_fraction().to_json()),
            ("sparsity".into(), self.sparsity().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::mock::{mock_circuit, SparsityProfile};
    use zkspeed_rt::rngs::StdRng;
    use zkspeed_rt::SeedableRng;

    #[test]
    fn stats_of_a_tiny_builder_circuit() {
        let mut b = CircuitBuilder::new();
        let x = b.input(Fr::from_u64(3));
        let y = b.mul(x, x);
        let z = b.add(y, x);
        b.assert_equal_constant(z, Fr::from_u64(12));
        let (circuit, witness) = b.build();
        let stats = CircuitStats::measure(&circuit, &witness);
        assert_eq!(stats.num_gates, circuit.num_gates());
        assert_eq!(stats.num_vars, circuit.num_vars());
        assert_eq!(stats.gate_kinds.additions, 1);
        assert_eq!(stats.gate_kinds.multiplications, 1);
        assert_eq!(stats.gate_kinds.linear, 1); // the equal-constant gate
                                                // Counts always sum to the circuit size.
        for col in stats.columns {
            assert_eq!(col.total(), stats.num_gates);
        }
        let kinds = stats.gate_kinds;
        assert_eq!(
            kinds.additions
                + kinds.multiplications
                + kinds.constants
                + kinds.linear
                + kinds.nonlinear
                + kinds.noops,
            stats.num_gates
        );
        // q_O is the densest selector in this circuit.
        assert!(stats.selector_density[3] >= stats.selector_density[2]);
        // JSON emission works.
        let json = stats.to_json().pretty();
        assert!(json.contains("selector_density"));
    }

    #[test]
    fn measured_fractions_match_the_mock_generator() {
        let mut r = StdRng::seed_from_u64(0x57a7);
        let (circuit, witness) = mock_circuit(9, SparsityProfile::paper_default(), &mut r);
        let stats = CircuitStats::measure(&circuit, &witness);
        // The deck-based generator hits the profile to within rounding.
        assert!((stats.zero_fraction() - 0.45).abs() < 0.02);
        assert!((stats.one_fraction() - 0.45).abs() < 0.02);
        assert!((stats.sparsity() - witness.sparsity()).abs() < 1e-12);
        assert!(stats.zero_fraction() + stats.one_fraction() <= 1.0);
    }
}
