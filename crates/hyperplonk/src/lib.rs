//! The HyperPlonk proof system — the protocol that the zkSpeed accelerator
//! (modeled in `zkspeed-core` / `zkspeed-hw`) accelerates.
//!
//! The crate provides the complete proving stack of Figure 2 of the paper:
//!
//! * [`CircuitBuilder`] / [`Circuit`] — the Plonk gate encoding of Eq. (1)
//!   and the wiring permutation;
//! * [`preprocess`] — universal-setup indexing (commitments to selectors and
//!   wiring);
//! * [`prove`] / [`prove_with_report`] — the five protocol steps (Witness
//!   Commits, Gate Identity, Wiring Identity, Batch Evaluations, Polynomial
//!   Opening), each exercising the kernels the accelerator builds units for;
//! * [`verify`] — the succinct verifier;
//! * [`mock_circuit`] / [`NAMED_WORKLOADS`] — the synthetic workloads the
//!   paper evaluates on (Table 3);
//! * [`profile_kernels`] — measured modmul counts and arithmetic intensities
//!   per kernel (Table 1).
//!
//! # Examples
//!
//! ```
//! use zkspeed_rt::rngs::StdRng;
//! use zkspeed_rt::SeedableRng;
//! use zkspeed_hyperplonk::{mock_circuit, preprocess, prove, verify, SparsityProfile};
//! use zkspeed_pcs::Srs;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let srs = Srs::setup(4, &mut rng);
//! let (circuit, witness) = mock_circuit(4, SparsityProfile::paper_default(), &mut rng);
//! let (pk, vk) = preprocess(circuit, &srs);
//! let proof = prove(&pk, &witness)?;
//! verify(&vk, &proof)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod circuit;
mod keys;
mod mock;
mod profile;
mod proof;
mod prover;
mod verifier;

pub use builder::{CircuitBuilder, Variable};
pub use circuit::{Circuit, GateSelectors, SatisfactionError, WireColumn, Witness};
pub use keys::{bind_circuit_to_transcript, preprocess, ProvingKey, VerifyingKey};
pub use mock::{mock_circuit, NamedWorkload, SparsityProfile, NAMED_WORKLOADS};
pub use profile::{profile_kernels, KernelProfile, BYTES_PER_FIELD_ELEMENT, BYTES_PER_G1_POINT};
pub use proof::{query_groups, BatchEvaluations, PolyLabel, Proof, QueryGroup};
pub use prover::{
    prove, prove_unchecked, prove_with_report, ProtocolStep, ProveError, ProverReport,
    GATE_SUMCHECK_DEGREE, OPENCHECK_DEGREE, PERM_SUMCHECK_DEGREE,
};
pub use verifier::{verify, VerifyError};
