//! The HyperPlonk proof system — the protocol that the zkSpeed accelerator
//! (modeled in `zkspeed-core` / `zkspeed-hw`) accelerates.
//!
//! The crate provides the complete proving stack of Figure 2 of the paper:
//!
//! * [`CircuitBuilder`] / [`Circuit`] — the Plonk gate encoding of Eq. (1)
//!   and the wiring permutation;
//! * [`try_preprocess`] — universal-setup indexing (commitments to selectors
//!   and wiring);
//! * [`prove_on`] / [`prove_with_report_on`] — the five protocol steps
//!   (Witness Commits, Gate Identity, Wiring Identity, Batch Evaluations,
//!   Polynomial Opening), each exercising the kernels the accelerator builds
//!   units for; the `*_msm_on` variants pin the MSM engine configuration;
//! * [`verify`] — the succinct verifier;
//! * [`mock_circuit`] / [`NAMED_WORKLOADS`] — the synthetic workloads the
//!   paper evaluates on (Table 3);
//! * [`profile_kernels`] — measured modmul counts and arithmetic intensities
//!   per kernel (Table 1).
//!
//! # Examples
//!
//! ```
//! use zkspeed_rt::rngs::StdRng;
//! use zkspeed_rt::SeedableRng;
//! use zkspeed_rt::pool;
//! use zkspeed_hyperplonk::{mock_circuit, prove_on, try_preprocess, verify, SparsityProfile};
//! use zkspeed_pcs::Srs;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let srs = Srs::try_setup(4, &mut rng)?;
//! let (circuit, witness) = mock_circuit(4, SparsityProfile::paper_default(), &mut rng);
//! let (pk, vk) = try_preprocess(circuit, &srs)?;
//! let proof = prove_on(&pk, &witness, &pool::ambient())?;
//! verify(&vk, &proof)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Downstream users should prefer the session API of the umbrella `zkspeed`
//! crate (`ProofSystem::setup` → `preprocess` → `ProverHandle::prove`),
//! which owns the keys, the execution backend and the MSM configuration.
//! (The deprecated free-function shims of the pre-session API — `preprocess`,
//! `prove`, `prove_with_report`, `prove_unchecked` — were removed after
//! their one release of overlap.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod circuit;
pub mod gadgets;
mod keys;
mod mock;
mod profile;
mod proof;
mod prover;
mod serialize;
mod stats;
mod verifier;
pub mod workloads;

pub use builder::{CircuitBuilder, Variable};
pub use circuit::{Circuit, GateSelectors, SatisfactionError, WireColumn, Witness};
pub use keys::{
    bind_circuit_to_transcript, try_preprocess, try_preprocess_on, try_preprocess_with_budget_on,
    PreprocessError, ProvingKey, VerifyingKey,
};
pub use mock::{mock_circuit, NamedWorkload, SparsityProfile, NAMED_WORKLOADS};
pub use profile::{profile_kernels, KernelProfile, BYTES_PER_FIELD_ELEMENT, BYTES_PER_G1_POINT};
pub use proof::{query_groups, BatchEvaluations, PolyLabel, Proof, QueryGroup};
pub use prover::{
    prove_batch_msm_on, prove_batch_on, prove_batch_with_reports_msm_on,
    prove_batch_with_reports_traced_on, prove_on, prove_unchecked_msm_on, prove_unchecked_on,
    prove_unchecked_traced_on, prove_with_report_msm_on, prove_with_report_on, ProtocolStep,
    ProveError, ProverReport, GATE_SUMCHECK_DEGREE, OPENCHECK_DEGREE, PERM_SUMCHECK_DEGREE,
};
pub use serialize::{KIND_CIRCUIT, KIND_PROOF, KIND_VERIFYING_KEY, KIND_WITNESS};
pub use stats::{CircuitStats, ColumnStats, GateKindCounts};
pub use verifier::{verify, VerifyError};
