//! Benchmarks of the G1 group operations and the MSM kernels (Witness
//! Commit / Wiring Identity workloads at reduced sizes).

use zkspeed_curve::{msm, sparse_msm, G1Affine, G1Projective};
use zkspeed_field::Fr;
use zkspeed_rt::bench::{black_box, Harness};
use zkspeed_rt::rngs::StdRng;
use zkspeed_rt::{Rng, SeedableRng};

fn setup(n: usize, rng: &mut StdRng) -> (Vec<G1Affine>, Vec<Fr>) {
    let proj: Vec<G1Projective> = (0..n).map(|_| G1Projective::random(rng)).collect();
    let points = G1Projective::batch_to_affine(&proj);
    let scalars = (0..n).map(|_| Fr::random(rng)).collect();
    (points, scalars)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2);
    let p = G1Projective::random(&mut rng);
    let q = G1Projective::random(&mut rng);
    let s = Fr::random(&mut rng);

    let mut h = Harness::new("curve");
    h.bench("padd", || black_box(p) + black_box(q));
    h.bench("pdbl", || black_box(p).double());
    h.bench("scalar_mul", || black_box(p).mul_scalar(&s));

    for log_n in [8usize, 10] {
        let (points, scalars) = setup(1 << log_n, &mut rng);
        h.bench(format!("msm/dense/{}", 1 << log_n), || {
            msm(&points, &scalars)
        });
        // Witness-style sparse scalars (45% zero, 45% one, 10% dense).
        let sparse: Vec<Fr> = scalars
            .iter()
            .map(|v| {
                let roll: f64 = rng.gen();
                if roll < 0.45 {
                    Fr::zero()
                } else if roll < 0.9 {
                    Fr::one()
                } else {
                    *v
                }
            })
            .collect();
        h.bench(format!("msm/sparse/{}", 1 << log_n), || {
            sparse_msm(&points, &sparse)
        });
    }
    h.finish();
}
