//! Benchmarks of the G1 group operations and the MSM kernels (Witness
//! Commit / Wiring Identity workloads at reduced sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zkspeed_curve::{msm, sparse_msm, G1Affine, G1Projective};
use zkspeed_field::Fr;

fn setup(n: usize, rng: &mut StdRng) -> (Vec<G1Affine>, Vec<Fr>) {
    let proj: Vec<G1Projective> = (0..n).map(|_| G1Projective::random(rng)).collect();
    let points = G1Projective::batch_to_affine(&proj);
    let scalars = (0..n).map(|_| Fr::random(rng)).collect();
    (points, scalars)
}

fn bench_curve(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let p = G1Projective::random(&mut rng);
    let q = G1Projective::random(&mut rng);
    let s = Fr::random(&mut rng);

    let mut group = c.benchmark_group("curve");
    group.sample_size(20);
    group.bench_function("padd", |b| b.iter(|| p + q));
    group.bench_function("pdbl", |b| b.iter(|| p.double()));
    group.bench_function("scalar_mul", |b| b.iter(|| p.mul_scalar(&s)));
    group.finish();

    let mut group = c.benchmark_group("msm");
    group.sample_size(10);
    for log_n in [8usize, 10] {
        let (points, scalars) = setup(1 << log_n, &mut rng);
        group.bench_with_input(BenchmarkId::new("dense", 1 << log_n), &log_n, |b, _| {
            b.iter(|| msm(&points, &scalars))
        });
        // Witness-style sparse scalars (45% zero, 45% one, 10% dense).
        let sparse: Vec<Fr> = scalars
            .iter()
            .map(|v| {
                let roll: f64 = rng.gen();
                if roll < 0.45 {
                    Fr::zero()
                } else if roll < 0.9 {
                    Fr::one()
                } else {
                    *v
                }
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("sparse", 1 << log_n), &log_n, |b, _| {
            b.iter(|| sparse_msm(&points, &sparse))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_curve);
criterion_main!(benches);
