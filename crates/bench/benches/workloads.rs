//! Real-circuit workload suite benchmarks (suite `workloads`, history file
//! `target/bench-history/workloads.json`).
//!
//! Each suite member — hash-chain, Merkle-membership, state-transition —
//! is built at test scale, its measured `CircuitStats` are printed and
//! persisted to `target/bench-history/workload-stats.json` (the CI build
//! artifact), and circuit construction, proving and verification are
//! timed through the backend-threaded prover entry points.

use zkspeed_hyperplonk::workloads::WorkloadSpec;
use zkspeed_hyperplonk::{prove_on, try_preprocess_on, verify, CircuitStats};
use zkspeed_pcs::Srs;
use zkspeed_rt::bench::{black_box, history_dir, Harness};
use zkspeed_rt::pool::{self, Backend};
use zkspeed_rt::rngs::StdRng;
use zkspeed_rt::{JsonValue, SeedableRng, ToJson};

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let backend: std::sync::Arc<dyn Backend> = pool::ambient();
    // All test-scale workloads fit one μ = 14 setup.
    let srs = Srs::try_setup(14, &mut rng).expect("setup fits");

    let mut h = Harness::new("workloads");
    let mut stats_docs: Vec<(String, JsonValue)> = Vec::new();
    for spec in WorkloadSpec::test_suite() {
        h.bench(format!("build/{}", spec.label()), || {
            black_box(spec.build(&mut StdRng::seed_from_u64(21)))
        });
        let (circuit, witness) = spec.build(&mut rng);
        let stats = CircuitStats::measure(&circuit, &witness);
        println!(
            "stats {}: mu={} zero={:.3} one={:.3} dense={:.3} sparsity={:.3}",
            spec.name(),
            stats.num_vars,
            stats.zero_fraction(),
            stats.one_fraction(),
            stats.dense_fraction(),
            stats.sparsity(),
        );
        stats_docs.push((spec.name(), stats.to_json()));

        let (pk, vk) = try_preprocess_on(circuit, &srs, &backend).expect("circuit fits");
        h.bench(format!("prove/{}", spec.label()), || {
            prove_on(&pk, &witness, &backend).expect("valid witness")
        });
        let proof = prove_on(&pk, &witness, &backend).expect("valid witness");
        h.bench(format!("verify/{}", spec.label()), || {
            verify(&vk, &proof).expect("valid proof")
        });
    }

    // Persist the measured statistics next to the timing history so CI can
    // archive them as a build artifact.
    if let Some(dir) = history_dir() {
        let doc = JsonValue::Object(stats_docs);
        let path = dir.join("workload-stats.json");
        let written = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, doc.pretty().as_bytes()));
        match written {
            Ok(()) => println!("workload stats: wrote {}", path.display()),
            Err(e) => eprintln!("workload stats: could not write {}: {e}", path.display()),
        }
    }
    h.finish();
}
