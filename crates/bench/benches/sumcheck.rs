//! Benchmarks of the SumCheck kernels: Build MLE, a ZeroCheck-shaped round,
//! the MLE Update, and a full ZeroCheck proof.

use zkspeed_field::Fr;
use zkspeed_poly::{MultilinearPoly, VirtualPolynomial};
use zkspeed_rt::bench::Harness;
use zkspeed_rt::rngs::StdRng;
use zkspeed_rt::SeedableRng;
use zkspeed_sumcheck::{prove_zerocheck, round_polynomial};
use zkspeed_transcript::Transcript;

fn gate_shaped_poly(num_vars: usize, rng: &mut StdRng) -> VirtualPolynomial {
    let mut vp = VirtualPolynomial::new(num_vars);
    let idx: Vec<usize> = (0..8)
        .map(|_| vp.add_mle(MultilinearPoly::random(num_vars, rng)))
        .collect();
    let eq = vp.add_mle(MultilinearPoly::eq_mle(
        &(0..num_vars).map(|_| Fr::random(rng)).collect::<Vec<_>>(),
    ));
    vp.add_term(Fr::one(), vec![idx[0], idx[5], eq]);
    vp.add_term(Fr::one(), vec![idx[1], idx[6], eq]);
    vp.add_term(Fr::one(), vec![idx[2], idx[5], idx[6], eq]);
    vp.add_term(-Fr::one(), vec![idx[3], idx[7], eq]);
    vp.add_term(Fr::one(), vec![idx[4], eq]);
    vp
}

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut h = Harness::new("sumcheck");

    for num_vars in [10usize, 12] {
        let point: Vec<Fr> = (0..num_vars).map(|_| Fr::random(&mut rng)).collect();
        h.bench(format!("build_mle/{num_vars}"), || {
            MultilinearPoly::eq_mle(&point)
        });
        let table = MultilinearPoly::random(num_vars, &mut rng);
        let r = Fr::random(&mut rng);
        h.bench(format!("mle_update/{num_vars}"), || {
            table.fix_first_variable(r)
        });
        let vp = gate_shaped_poly(num_vars, &mut rng);
        h.bench(format!("zerocheck_round/{num_vars}"), || {
            round_polynomial(&vp, 4)
        });
        h.bench(format!("zerocheck_full/{num_vars}"), || {
            let mut t = Transcript::new(b"bench");
            prove_zerocheck(&vp, &mut t)
        });
    }
    h.finish();
}
