//! Benchmarks of the SumCheck kernels: Build MLE, a ZeroCheck-shaped round,
//! the MLE Update, and a full ZeroCheck proof.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use zkspeed_field::Fr;
use zkspeed_poly::{MultilinearPoly, VirtualPolynomial};
use zkspeed_sumcheck::{prove_zerocheck, round_polynomial};
use zkspeed_transcript::Transcript;

fn gate_shaped_poly(num_vars: usize, rng: &mut StdRng) -> VirtualPolynomial {
    let mut vp = VirtualPolynomial::new(num_vars);
    let idx: Vec<usize> = (0..8)
        .map(|_| vp.add_mle(MultilinearPoly::random(num_vars, rng)))
        .collect();
    let eq = vp.add_mle(MultilinearPoly::eq_mle(
        &(0..num_vars).map(|_| Fr::random(rng)).collect::<Vec<_>>(),
    ));
    vp.add_term(Fr::one(), vec![idx[0], idx[5], eq]);
    vp.add_term(Fr::one(), vec![idx[1], idx[6], eq]);
    vp.add_term(Fr::one(), vec![idx[2], idx[5], idx[6], eq]);
    vp.add_term(-Fr::one(), vec![idx[3], idx[7], eq]);
    vp.add_term(Fr::one(), vec![idx[4], eq]);
    vp
}

fn bench_sumcheck(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);

    let mut group = c.benchmark_group("sumcheck");
    group.sample_size(10);
    for num_vars in [10usize, 12] {
        let point: Vec<Fr> = (0..num_vars).map(|_| Fr::random(&mut rng)).collect();
        group.bench_with_input(BenchmarkId::new("build_mle", num_vars), &num_vars, |b, _| {
            b.iter(|| MultilinearPoly::eq_mle(&point))
        });
        let table = MultilinearPoly::random(num_vars, &mut rng);
        let r = Fr::random(&mut rng);
        group.bench_with_input(BenchmarkId::new("mle_update", num_vars), &num_vars, |b, _| {
            b.iter(|| table.fix_first_variable(r))
        });
        let vp = gate_shaped_poly(num_vars, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("zerocheck_round", num_vars),
            &num_vars,
            |b, _| b.iter(|| round_polynomial(&vp, 4)),
        );
        group.bench_with_input(
            BenchmarkId::new("zerocheck_full", num_vars),
            &num_vars,
            |b, _| {
                b.iter(|| {
                    let mut t = Transcript::new(b"bench");
                    prove_zerocheck(&vp, &mut t)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sumcheck);
criterion_main!(benches);
