//! MSM engine schedule sweep: window bits × backend threads × schedule at
//! n = 2^12 points (suite `msm`, history file
//! `target/bench-history/msm.json`).
//!
//! The schedules compared:
//!
//! * `classic`      — PR 2 baseline: unsigned windows, window-parallel,
//!   mixed adds into projective buckets;
//! * `signed`       — + signed-digit recoding (half the buckets);
//! * `signed-intra` — + SZKP-style intra-window chunking;
//! * `optimized`    — + batch-affine bucket accumulation (the default).
//!
//! Besides the wall-clock records, the per-schedule `MsmStats::fq_muls()`
//! counts are printed so the modmul reduction is visible alongside the
//! timing.
//!
//! The `precomputed` rows sweep the table-backed fixed-base engine
//! (`MsmSchedule::Precomputed`) against the `optimized` in-place schedule
//! at n ∈ {2^10, 2^12, 2^14} so the crossover point is recorded in the
//! same history file: the tables pay a one-time 255-doublings-per-base
//! build (printed, not benchmarked — it is amortized over a session) and
//! then every repeated commit runs with zero doublings.

use std::sync::Arc;

use zkspeed_curve::{
    msm_precomputed_on, msm_with_config_on, G1Affine, G1Projective, MsmConfig, MsmSchedule,
    MultiBaseTable,
};
use zkspeed_field::Fr;
use zkspeed_rt::bench::{black_box, Harness};
use zkspeed_rt::pool::backend_with_threads;
use zkspeed_rt::rngs::StdRng;
use zkspeed_rt::SeedableRng;

fn setup(n: usize, rng: &mut StdRng) -> (Vec<G1Affine>, Vec<Fr>) {
    let proj: Vec<G1Projective> = (0..n).map(|_| G1Projective::random(rng)).collect();
    let points = G1Projective::batch_to_affine(&proj);
    let scalars = (0..n).map(|_| Fr::random(rng)).collect();
    (points, scalars)
}

fn schedules() -> Vec<(&'static str, MsmConfig)> {
    vec![
        ("classic", MsmConfig::classic()),
        ("signed", MsmConfig::classic().with_signed_digits(true)),
        (
            "signed-intra",
            MsmConfig::classic()
                .with_signed_digits(true)
                .with_schedule(MsmSchedule::IntraWindow { chunks: 0 }),
        ),
        ("optimized", MsmConfig::optimized()),
    ]
}

fn main() {
    let mut rng = StdRng::seed_from_u64(12);
    let n = 1usize << 12;
    let (points, scalars) = setup(n, &mut rng);

    // Operation counts are timing-independent; print them once per
    // (window, schedule) so the fq_muls reduction is recorded next to the
    // wall-clock numbers.
    for w in [8usize, 10] {
        for (name, config) in schedules() {
            let (_, stats) =
                zkspeed_curve::msm_with_config(&points, &scalars, config.with_window_bits(w));
            println!(
                "msm stats n=2^12 w={w} {name}: fq_muls={} adds={} (bucket={} affine={} agg={} \
                 partial-combine={} combine={}) inversions={} recoded={}",
                stats.fq_muls(),
                stats.total_adds(),
                stats.bucket_adds,
                stats.affine_adds,
                stats.aggregation_adds,
                stats.partial_combine_adds,
                stats.combine_adds,
                stats.batch_inversions,
                stats.recoded_scalars,
            );
        }
    }

    let mut h = Harness::new("msm");
    for w in [8usize, 10] {
        for threads in [1usize, 4] {
            let backend = backend_with_threads(threads);
            for (name, config) in schedules() {
                let config = config.with_window_bits(w);
                h.bench(format!("msm/4096/w{w}/t{threads}/{name}"), || {
                    black_box(msm_with_config_on(&*backend, &points, &scalars, config))
                });
            }
        }
    }

    // Precomputed-table sweep: per (n, w) the session table is built once
    // (outside the timed region, like a session preprocess), then the
    // repeated-commit path is timed against the best in-place schedule at
    // the same window width. n = 2^10 records the small-MSM regime where
    // the crossover sits, n = 2^14 the serving regime where the tables win
    // outright.
    for log_n in [10usize, 12, 14] {
        let n = 1usize << log_n;
        let (points, scalars) = setup(n, &mut rng);
        let shared = Arc::new(points.clone());
        for w in [10usize, 12] {
            let build_backend = backend_with_threads(4);
            let started = std::time::Instant::now();
            let table = Arc::new(MultiBaseTable::build_on(&shared, w, &*build_backend));
            println!(
                "precompute build n=2^{log_n} w={w}: {} points ({} bytes) in {:.1} ms",
                table.size_in_points(),
                table.size_in_bytes(),
                started.elapsed().as_secs_f64() * 1e3
            );
            let pre_config = MsmConfig::precomputed().with_window_bits(w);
            let (_, pre_stats) = msm_precomputed_on(&*build_backend, &table, &scalars, pre_config);
            let base_config = MsmConfig::optimized().with_window_bits(w);
            let (_, base_stats) = zkspeed_curve::msm_with_config(&points, &scalars, base_config);
            println!(
                "msm stats n=2^{log_n} w={w} precomputed: fq_muls={} vs optimized fq_muls={} \
                 ({:.2}x fewer)",
                pre_stats.fq_muls(),
                base_stats.fq_muls(),
                base_stats.fq_muls() as f64 / pre_stats.fq_muls() as f64
            );
            for threads in [1usize, 4] {
                let backend = backend_with_threads(threads);
                // Skip baseline rows the fixed-size sweep above already
                // recorded under the same name.
                if !(log_n == 12 && w == 10) {
                    h.bench(format!("msm/{n}/w{w}/t{threads}/optimized"), || {
                        black_box(msm_with_config_on(
                            &*backend,
                            &points,
                            &scalars,
                            base_config,
                        ))
                    });
                }
                h.bench(format!("msm/{n}/w{w}/t{threads}/precomputed"), || {
                    black_box(msm_precomputed_on(&*backend, &table, &scalars, pre_config))
                });
            }
        }
    }
    h.finish();
}
