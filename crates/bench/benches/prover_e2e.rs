//! End-to-end HyperPlonk prover and verifier benchmarks (the CPU baseline
//! this repository measures directly, at laptop-scale problem sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use zkspeed_hyperplonk::{mock_circuit, preprocess, prove, verify, SparsityProfile};
use zkspeed_pcs::Srs;

fn bench_prover(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("hyperplonk");
    group.sample_size(10);
    for num_vars in [6usize, 8] {
        let srs = Srs::setup(num_vars, &mut rng);
        let (circuit, witness) = mock_circuit(num_vars, SparsityProfile::paper_default(), &mut rng);
        let (pk, vk) = preprocess(circuit, &srs);
        group.bench_with_input(BenchmarkId::new("prove", 1 << num_vars), &num_vars, |b, _| {
            b.iter(|| prove(&pk, &witness).expect("valid witness"))
        });
        let proof = prove(&pk, &witness).expect("valid witness");
        group.bench_with_input(BenchmarkId::new("verify", 1 << num_vars), &num_vars, |b, _| {
            b.iter(|| verify(&vk, &proof).expect("valid proof"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prover);
criterion_main!(benches);
