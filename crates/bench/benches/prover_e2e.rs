//! End-to-end HyperPlonk prover and verifier benchmarks (the CPU baseline
//! this repository measures directly, at laptop-scale problem sizes).

use zkspeed_hyperplonk::{mock_circuit, preprocess, prove, verify, SparsityProfile};
use zkspeed_pcs::Srs;
use zkspeed_rt::bench::Harness;
use zkspeed_rt::rngs::StdRng;
use zkspeed_rt::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut h = Harness::new("hyperplonk");
    for num_vars in [6usize, 8] {
        let srs = Srs::setup(num_vars, &mut rng);
        let (circuit, witness) = mock_circuit(num_vars, SparsityProfile::paper_default(), &mut rng);
        let (pk, vk) = preprocess(circuit, &srs);
        h.bench(format!("prove/{}", 1 << num_vars), || {
            prove(&pk, &witness).expect("valid witness")
        });
        let proof = prove(&pk, &witness).expect("valid witness");
        h.bench(format!("verify/{}", 1 << num_vars), || {
            verify(&vk, &proof).expect("valid proof")
        });
    }
    h.finish();
}
