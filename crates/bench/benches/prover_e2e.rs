//! End-to-end HyperPlonk prover and verifier benchmarks (the CPU baseline
//! this repository measures directly, at laptop-scale problem sizes),
//! driven through the backend-threaded session entry points so key setup
//! happens once per size.

use std::sync::Arc;

use zkspeed_hyperplonk::{
    mock_circuit, prove_batch_on, prove_on, try_preprocess_on, verify, SparsityProfile,
};
use zkspeed_pcs::Srs;
use zkspeed_rt::bench::Harness;
use zkspeed_rt::pool::{self, Backend};
use zkspeed_rt::rngs::StdRng;
use zkspeed_rt::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut h = Harness::new("hyperplonk");
    let backend: Arc<dyn Backend> = pool::ambient();
    for num_vars in [6usize, 8] {
        let srs = Srs::try_setup(num_vars, &mut rng).expect("setup fits");
        let (circuit, witness) = mock_circuit(num_vars, SparsityProfile::paper_default(), &mut rng);
        let (pk, vk) = try_preprocess_on(circuit, &srs, &backend).expect("circuit fits");
        h.bench(format!("prove/{}", 1 << num_vars), || {
            prove_on(&pk, &witness, &backend).expect("valid witness")
        });
        let witnesses = vec![
            witness.clone(),
            witness.clone(),
            witness.clone(),
            witness.clone(),
        ];
        h.bench(format!("prove_batch4/{}", 1 << num_vars), || {
            prove_batch_on(&pk, &witnesses, &backend).expect("valid witnesses")
        });
        let proof = prove_on(&pk, &witness, &backend).expect("valid witness");
        h.bench(format!("verify/{}", 1 << num_vars), || {
            verify(&vk, &proof).expect("valid proof")
        });
        h.bench(format!("proof_to_bytes/{}", 1 << num_vars), || {
            proof.to_bytes()
        });
    }
    h.finish();
}
