//! Proving-service throughput benchmarks (suite `service`, history file
//! `target/bench-history/service.json`).
//!
//! Spins up a [`ProvingService`] over one μ = 14 SRS with the three PR 4
//! workloads registered as sessions, then measures sustained multi-client
//! throughput: `serve/<jobs>jobs-<clients>clients` submits interleaved
//! jobs from concurrent client threads (mixed priorities, all sessions)
//! and waits for every proof. The final [`ServiceMetrics`] snapshot —
//! queue depth, wave occupancy, per-session p50/p99 latency, proofs/sec,
//! MSM rollups — is persisted to `target/bench-history/service-metrics.json`
//! so CI archives the service's operational profile next to its timings.
//!
//! The `serve-tcp/*` scenarios run the same shape through the real
//! loopback transport — one `NetServer`, 4 `NetClient` threads each on
//! its own authenticated `127.0.0.1` socket — so the wire-protocol and
//! socket overhead shows up next to the in-process numbers; the TCP
//! service's metrics (including the per-session p99 and connection
//! counters) land in `target/bench-history/service-tcp-metrics.json`.
//!
//! The `serve/fault-1-in-8` scenario injects a deterministic
//! wave-panic rate through the service's fault plan and measures serving
//! throughput with supervision absorbing the failures; its failure and
//! restart counters land in
//! `target/bench-history/service-fault-metrics.json`.
//!
//! The `serve/repeat-4jobs/trace-{off,on}` pair measures the structured
//! tracing tax: the `trace-on` service records the full span tree of every
//! job (queue wait, wave, protocol steps, MSM passes) and its phase-level
//! latency histograms land in
//! `target/bench-history/service-trace-phases.json`.
//!
//! The `serve/skewed-resubmit/cache-{off,on}` pair measures the session
//! lifecycle machinery under skewed load: a session-capacity-bounded
//! store (LRU eviction live) serving identical resubmissions of one hot
//! session, with and without the proof cache. The cache-on service's
//! metrics — session lifecycle counters, proof-cache hit/miss/bytes —
//! are persisted to `target/bench-history/service-session-metrics.json`.
//!
//! [`ServiceMetrics`]: zkspeed_svc::ServiceMetrics

use std::sync::Arc;
use std::time::Duration;

use zkspeed_curve::MsmConfig;
use zkspeed_hyperplonk::workloads::WorkloadSpec;
use zkspeed_hyperplonk::Witness;
use zkspeed_net::{ClientConfig, NetClient, NetServer, ServerConfig};
use zkspeed_pcs::{PrecomputeBudget, Srs};
use zkspeed_rt::bench::{history_dir, Harness};
use zkspeed_rt::rngs::StdRng;
use zkspeed_rt::{SeedableRng, ToJson};
use zkspeed_svc::{Priority, ProvingService, ServiceConfig};

fn main() {
    let mut rng = StdRng::seed_from_u64(33);
    let srs = Arc::new(Srs::try_setup(14, &mut rng).expect("μ=14 setup fits"));
    let repeat_srs = Arc::clone(&srs);

    let threads = zkspeed_rt::par::current_threads();
    let config = ServiceConfig::default()
        .with_shards(if threads >= 4 { 2 } else { 1 })
        .with_threads_per_shard((threads / 2).max(1))
        .with_wave_size(4)
        .with_queue_capacity(64);
    let service = Arc::new(ProvingService::start(srs, config));

    let mut sessions: Vec<([u8; 32], Witness)> = Vec::new();
    for spec in WorkloadSpec::test_suite() {
        let (circuit, witness) = spec.build(&mut rng);
        let digest = service
            .register_circuit(circuit)
            .expect("workload fits μ=14 SRS");
        sessions.push((digest, witness));
    }

    let mut h = Harness::new("service");
    for (jobs, clients) in [(4usize, 2usize), (8, 4)] {
        h.bench(format!("serve/{jobs}jobs-{clients}clients"), || {
            let workers: Vec<_> = (0..clients)
                .map(|client| {
                    let service = Arc::clone(&service);
                    let sessions = sessions.clone();
                    std::thread::spawn(move || {
                        let per_client = jobs / clients;
                        let ids: Vec<u64> = (0..per_client)
                            .map(|i| {
                                let (digest, witness) = &sessions[(client + i) % sessions.len()];
                                let priority = Priority::ALL[(client + i) % 3];
                                service
                                    .submit(digest, witness.clone(), priority)
                                    .expect("parking submit succeeds")
                            })
                            .collect();
                        for id in ids {
                            service.wait(id).expect("job completes");
                        }
                    })
                })
                .collect();
            for worker in workers {
                worker.join().expect("client thread");
            }
        });
    }
    // Loopback-TCP scenario: the same fan-in through the real transport —
    // every witness and proof crosses an authenticated 127.0.0.1 socket as
    // wire frames, so the delta against `serve/*` is the protocol + socket
    // overhead.
    let tcp_server = {
        let mut tcp_rng = StdRng::seed_from_u64(34);
        let tcp_srs = Arc::new(Srs::try_setup(14, &mut tcp_rng).expect("μ=14 setup fits"));
        let tcp_service = ProvingService::start(
            tcp_srs,
            ServiceConfig::default()
                .with_shards(if threads >= 4 { 2 } else { 1 })
                .with_threads_per_shard((threads / 2).max(1))
                .with_wave_size(4)
                .with_queue_capacity(64),
        );
        NetServer::bind(
            tcp_service,
            ServerConfig::new("127.0.0.1:0")
                .with_auth_token(b"bench-token")
                .with_idle_timeout(Duration::from_secs(300)),
        )
        .expect("bind loopback")
    };
    let tcp_addr = tcp_server.local_addr();
    let tcp_sessions: Vec<([u8; 32], Vec<u8>)> = {
        let mut admin = NetClient::connect(tcp_addr, b"bench-token", ClientConfig::default())
            .expect("bench client connects");
        let mut out = Vec::new();
        let mut tcp_rng = StdRng::seed_from_u64(35);
        for spec in WorkloadSpec::test_suite() {
            let (circuit, witness) = spec.build(&mut tcp_rng);
            let (digest, _) = admin
                .register_circuit(&circuit.to_bytes())
                .expect("workload fits μ=14 SRS");
            out.push((digest, witness.to_bytes()));
        }
        out
    };
    {
        let (jobs, clients) = (8usize, 4usize);
        h.bench(format!("serve-tcp/{jobs}jobs-{clients}clients"), || {
            let workers: Vec<_> = (0..clients)
                .map(|client_id| {
                    let sessions = tcp_sessions.clone();
                    std::thread::spawn(move || {
                        let mut client =
                            NetClient::connect(tcp_addr, b"bench-token", ClientConfig::default())
                                .expect("bench client connects");
                        let per_client = jobs / clients;
                        let ids: Vec<u64> = (0..per_client)
                            .map(|i| {
                                let (digest, witness) = &sessions[(client_id + i) % sessions.len()];
                                let priority = Priority::ALL[(client_id + i) % 3];
                                client
                                    .submit(*digest, priority, witness)
                                    .expect("tcp submit succeeds")
                            })
                            .collect();
                        for id in ids {
                            client
                                .wait(id, Duration::from_secs(600))
                                .expect("tcp job completes");
                        }
                    })
                })
                .collect();
            for worker in workers {
                worker.join().expect("tcp client thread");
            }
        });
    }
    let tcp_metrics = tcp_server.service().metrics();
    println!(
        "tcp service metrics: {} proofs, {:.2} proofs/s over {} connections",
        tcp_metrics.completed, tcp_metrics.proofs_per_second, tcp_metrics.connections.total
    );
    if let Some(dir) = history_dir() {
        let path = dir.join("service-tcp-metrics.json");
        let written = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, tcp_metrics.to_json().pretty().as_bytes()));
        match written {
            Ok(()) => println!("tcp service metrics: wrote {}", path.display()),
            Err(e) => eprintln!(
                "tcp service metrics: could not write {}: {e}",
                path.display()
            ),
        }
    }
    tcp_server.shutdown();

    // Repeated-commit scenario: one session proving the same circuit over
    // and over — the serving pattern the precomputed commit tables target.
    // The `-on` service pays the table build once at registration (outside
    // the timed region, like any session preprocess); every timed proof
    // then commits through the zero-doubling table engine.
    let (repeat_circuit, repeat_witness) = WorkloadSpec::test_suite()[0].build(&mut rng);
    for (label, precompute, msm_config) in [
        (
            "precompute-off",
            PrecomputeBudget::disabled(),
            MsmConfig::default(),
        ),
        (
            "precompute-on",
            PrecomputeBudget::unlimited(),
            MsmConfig::precomputed(),
        ),
    ] {
        let repeat_config = ServiceConfig::default()
            .with_shards(1)
            .with_threads_per_shard(threads.max(1))
            .with_wave_size(4)
            .with_msm_config(msm_config)
            .with_precompute(precompute);
        let repeat_svc = ProvingService::start(Arc::clone(&repeat_srs), repeat_config);
        let digest = repeat_svc
            .register_circuit(repeat_circuit.clone())
            .expect("workload fits μ=14 SRS");
        h.bench(format!("serve/repeat-4jobs/{label}"), || {
            let ids: Vec<u64> = (0..4)
                .map(|_| {
                    repeat_svc
                        .submit(&digest, repeat_witness.clone(), Priority::Normal)
                        .expect("parking submit succeeds")
                })
                .collect();
            for id in ids {
                repeat_svc.wait(id).expect("job completes");
            }
        });
        let m = repeat_svc.metrics();
        let session = m.sessions.first().expect("one registered session");
        println!(
            "repeat-commit {label}: {} proofs, {:.2} proofs/s, table bytes {}, build {:.1} ms",
            m.completed,
            m.proofs_per_second,
            session.precompute_table_bytes,
            session.precompute_build_ms
        );
    }
    // Tracing-overhead scenario: the same repeat-4jobs shape with the span
    // recorder off and on. The `trace-on` run records a full span tree per
    // job (queue wait, wave, the five protocol steps, per-MSM passes); the
    // median ratio against `trace-off` is the tracing tax, which the
    // acceptance criteria pin under 2%. The traced service's phase
    // histograms land in `service-trace-phases.json` so CI tracks the
    // step-level latency profile run over run.
    let mut trace_medians = [0u128; 2];
    for (idx, label) in ["trace-off", "trace-on"].into_iter().enumerate() {
        let sink = zkspeed_rt::trace::TraceSink::enabled();
        let mut trace_config = ServiceConfig::default()
            .with_shards(1)
            .with_threads_per_shard(threads.max(1))
            .with_wave_size(4);
        if idx == 1 {
            trace_config = trace_config.with_trace(sink.clone());
        }
        let trace_svc = ProvingService::start(Arc::clone(&repeat_srs), trace_config);
        let digest = trace_svc
            .register_circuit(repeat_circuit.clone())
            .expect("workload fits μ=14 SRS");
        h.bench(format!("serve/repeat-4jobs/{label}"), || {
            let ids: Vec<u64> = (0..4)
                .map(|_| {
                    trace_svc
                        .submit(&digest, repeat_witness.clone(), Priority::Normal)
                        .expect("parking submit succeeds")
                })
                .collect();
            for id in ids {
                trace_svc.wait(id).expect("job completes");
            }
        });
        trace_medians[idx] = h.last_median_ns().unwrap_or(0);
        if idx == 1 {
            let m = trace_svc.metrics();
            println!(
                "trace-on: {} events recorded ({} dropped), prove_total count {}",
                sink.event_count(),
                sink.dropped_events(),
                m.phases.prove_total.count()
            );
            if let Some(dir) = history_dir() {
                let path = dir.join("service-trace-phases.json");
                let doc = zkspeed_rt::JsonValue::Object(vec![
                    (
                        "phases".into(),
                        zkspeed_rt::JsonValue::Object(
                            m.phases
                                .named()
                                .iter()
                                .map(|(name, hist)| (name.to_string(), hist.to_json()))
                                .collect(),
                        ),
                    ),
                    (
                        "queue_wait_ms".into(),
                        zkspeed_rt::JsonValue::Object(
                            ["high", "normal", "low"]
                                .iter()
                                .zip(m.queue_waits.iter())
                                .map(|(class, hist)| (class.to_string(), hist.to_json()))
                                .collect(),
                        ),
                    ),
                    (
                        "trace_events".into(),
                        zkspeed_rt::JsonValue::UInt(sink.event_count() as u64),
                    ),
                ]);
                let written = std::fs::create_dir_all(&dir)
                    .and_then(|()| std::fs::write(&path, doc.pretty().as_bytes()));
                match written {
                    Ok(()) => println!("trace phases: wrote {}", path.display()),
                    Err(e) => eprintln!("trace phases: could not write {}: {e}", path.display()),
                }
            }
        }
    }
    if trace_medians[0] > 0 && trace_medians[1] > 0 {
        let overhead = trace_medians[1] as f64 / trace_medians[0] as f64 - 1.0;
        println!(
            "trace overhead: {:+.2}% median wall time (acceptance target < 2%)",
            overhead * 100.0
        );
    }
    // Skewed-resubmission scenario: a fleet-shaped store (session capacity
    // below the registered count, so LRU eviction is live) serving a hot
    // session whose clients resubmit identical (circuit, witness) pairs —
    // the workload the proof cache targets. `cache-off` proves every
    // submission; `cache-on` proves once and answers the rest from the
    // cache, so the throughput ratio is the cache's win.
    for (label, cache_bytes) in [("cache-off", 0u64), ("cache-on", 1u64 << 20)] {
        let skew_config = ServiceConfig::default()
            .with_shards(1)
            .with_threads_per_shard(threads.max(1))
            .with_wave_size(4)
            .with_session_capacity(2)
            .with_proof_cache_bytes(cache_bytes);
        let skew_svc = ProvingService::start(Arc::clone(&repeat_srs), skew_config);
        let mut skew_rng = StdRng::seed_from_u64(36);
        // Three registered sessions against a capacity of two: the first
        // is LRU-evicted, so the persisted metrics show the lifecycle
        // machinery working. The hot session is the last registered (never
        // the eviction victim).
        let mut hot = None;
        for spec in WorkloadSpec::test_suite() {
            let (circuit, witness) = spec.build(&mut skew_rng);
            let digest = skew_svc
                .register_circuit(circuit)
                .expect("workload fits μ=14 SRS");
            hot = Some((digest, witness));
        }
        let (hot_digest, hot_witness) = hot.expect("suite is non-empty");
        h.bench(format!("serve/skewed-resubmit/{label}"), || {
            let ids: Vec<u64> = (0..12)
                .map(|_| {
                    skew_svc
                        .submit(&hot_digest, hot_witness.clone(), Priority::Normal)
                        .expect("parking submit succeeds")
                })
                .collect();
            for id in ids {
                skew_svc.wait(id).expect("job completes");
            }
        });
        let m = skew_svc.metrics();
        println!(
            "skewed-resubmit {label}: {} submitted, {} proved, cache {} hits / {} misses, \
             {} sessions evicted",
            m.submitted,
            m.completed,
            m.proof_cache.hits,
            m.proof_cache.misses,
            m.lifecycle.evictions
        );
        if cache_bytes > 0 {
            if let Some(dir) = history_dir() {
                let path = dir.join("service-session-metrics.json");
                let written = std::fs::create_dir_all(&dir)
                    .and_then(|()| std::fs::write(&path, m.to_json().pretty().as_bytes()));
                match written {
                    Ok(()) => println!("session metrics: wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("session metrics: could not write {}: {e}", path.display())
                    }
                }
            }
        }
    }
    // Fault-injected scenario: ~1 in 8 waves panics (deterministic seed),
    // wave size 1 so the rate maps directly onto jobs. Measures serving
    // throughput *with the supervision machinery absorbing failures* —
    // failed jobs are collected like successes, just without a proof. The
    // survivor service's failure/restart counters are persisted to
    // `service-fault-metrics.json` so CI tracks the chaos profile run over
    // run.
    let fault_svc = {
        let fault_plan =
            zkspeed_rt::faults::FaultPlan::parse("wave-panic~8:seed=88").expect("valid spec");
        let fault_config = ServiceConfig::default()
            .with_shards(1)
            .with_threads_per_shard(threads.max(1))
            .with_wave_size(1)
            .with_faults(Arc::new(fault_plan));
        ProvingService::start(Arc::clone(&repeat_srs), fault_config)
    };
    {
        let digest = fault_svc
            .register_circuit(repeat_circuit.clone())
            .expect("workload fits μ=14 SRS");
        h.bench("serve/fault-1-in-8", || {
            let ids: Vec<u64> = (0..8)
                .map(|_| {
                    fault_svc
                        .submit(&digest, repeat_witness.clone(), Priority::Normal)
                        .expect("parking submit succeeds")
                })
                .collect();
            for id in ids {
                match fault_svc.wait(id) {
                    Ok(_) | Err(zkspeed_svc::ServiceError::JobFailed(_)) => {}
                    Err(e) => panic!("unexpected outcome under fault plan: {e}"),
                }
            }
        });
    }
    h.finish();

    let fault_metrics = fault_svc.metrics();
    println!(
        "fault service metrics: {} proofs, {} failed ({} wave panics, {} restarts)",
        fault_metrics.completed,
        fault_metrics.failed,
        fault_metrics.supervision.wave_panics,
        fault_metrics.supervision.worker_restarts
    );
    if let Some(dir) = history_dir() {
        let path = dir.join("service-fault-metrics.json");
        let written = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, fault_metrics.to_json().pretty().as_bytes()));
        match written {
            Ok(()) => println!("fault service metrics: wrote {}", path.display()),
            Err(e) => eprintln!(
                "fault service metrics: could not write {}: {e}",
                path.display()
            ),
        }
    }

    // Persist the operational metrics next to the timing history.
    let metrics = service.metrics();
    println!(
        "service metrics: {} proofs, {:.2} proofs/s, mean wave occupancy {:.2}",
        metrics.completed, metrics.proofs_per_second, metrics.mean_wave_occupancy
    );
    if let Some(dir) = history_dir() {
        let path = dir.join("service-metrics.json");
        let written = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, metrics.to_json().pretty().as_bytes()));
        match written {
            Ok(()) => println!("service metrics: wrote {}", path.display()),
            Err(e) => eprintln!("service metrics: could not write {}: {e}", path.display()),
        }
    }
}
