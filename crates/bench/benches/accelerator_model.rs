//! Benchmarks of the accelerator-model layer itself: one full-chip
//! simulation and one reduced design-space exploration sweep.

use zkspeed_core::{explore, pareto_frontier, ChipConfig, DesignSpace, Workload};
use zkspeed_rt::bench::Harness;

fn main() {
    let mut h = Harness::new("accelerator_model");
    let chip = ChipConfig::table5_design();
    let workload = Workload::standard(20);
    h.bench("simulate_2^20", || chip.simulate(&workload));
    h.bench("area_power", || (chip.area(), chip.power()));
    let space = DesignSpace {
        bandwidths_gbps: vec![2048.0],
        msm_points_per_pe: vec![2048],
        msm_window_bits: vec![9],
        mle_update_modmuls: vec![4],
        ..DesignSpace::reduced()
    };
    h.bench("dse_sweep_small", || {
        pareto_frontier(&explore(&space, &workload))
    });
    h.finish();
}
