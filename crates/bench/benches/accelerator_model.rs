//! Benchmarks of the accelerator-model layer itself: one full-chip
//! simulation and one reduced design-space exploration sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use zkspeed_core::{explore, pareto_frontier, ChipConfig, DesignSpace, Workload};

fn bench_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("accelerator_model");
    group.sample_size(10);
    let chip = ChipConfig::table5_design();
    let workload = Workload::standard(20);
    group.bench_function("simulate_2^20", |b| b.iter(|| chip.simulate(&workload)));
    group.bench_function("area_power", |b| b.iter(|| (chip.area(), chip.power())));
    let space = DesignSpace {
        bandwidths_gbps: vec![2048.0],
        msm_points_per_pe: vec![2048],
        msm_window_bits: vec![9],
        mle_update_modmuls: vec![4],
        ..DesignSpace::reduced()
    };
    group.bench_function("dse_sweep_small", |b| {
        b.iter(|| pareto_frontier(&explore(&space, &workload)))
    });
    group.finish();
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
