//! Microbenchmarks of the BLS12-381 field arithmetic (the "modmul" the
//! entire zkSpeed cost model is denominated in).

use zkspeed_field::{batch_invert, Fq, Fr};
use zkspeed_rt::bench::{black_box, Harness};
use zkspeed_rt::rngs::StdRng;
use zkspeed_rt::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Fr::random(&mut rng);
    let b = Fr::random(&mut rng);
    let x = Fq::random(&mut rng);
    let y = Fq::random(&mut rng);
    let vals: Vec<Fr> = (0..64).map(|_| Fr::random(&mut rng)).collect();

    let mut h = Harness::new("field");
    h.bench("fr_mul_255b", || black_box(a) * black_box(b));
    h.bench("fq_mul_381b", || black_box(x) * black_box(y));
    h.bench("fr_invert_beea", || black_box(a).invert().unwrap());
    h.bench("fr_invert_fermat", || black_box(a).invert_fermat().unwrap());
    // Reuse one scratch buffer so each iteration only pays a 2 KiB copy on
    // top of the inversion, not an allocation.
    let mut scratch = vals.clone();
    h.bench("fr_batch_invert_64", || {
        scratch.copy_from_slice(&vals);
        batch_invert(&mut scratch);
        scratch[0]
    });
    h.finish();
}
