//! Microbenchmarks of the BLS12-381 field arithmetic (the "modmul" the
//! entire zkSpeed cost model is denominated in).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use zkspeed_field::{batch_invert, Fq, Fr};

fn bench_field_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Fr::random(&mut rng);
    let b = Fr::random(&mut rng);
    let x = Fq::random(&mut rng);
    let y = Fq::random(&mut rng);

    let mut group = c.benchmark_group("field");
    group.bench_function("fr_mul_255b", |bench| bench.iter(|| a * b));
    group.bench_function("fq_mul_381b", |bench| bench.iter(|| x * y));
    group.bench_function("fr_invert_beea", |bench| bench.iter(|| a.invert().unwrap()));
    group.bench_function("fr_invert_fermat", |bench| {
        bench.iter(|| a.invert_fermat().unwrap())
    });
    group.bench_function("fr_batch_invert_64", |bench| {
        let vals: Vec<Fr> = (0..64).map(|_| Fr::random(&mut rng)).collect();
        bench.iter_batched(
            || vals.clone(),
            |mut v| batch_invert(&mut v),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_field_ops
}
criterion_main!(benches);
