//! Universal-setup benchmarks (suite `setup`, history file
//! `target/bench-history/setup.json`).
//!
//! The proving service registers sessions at startup, which puts
//! `Srs::try_setup` on the serving path. The setup's `2^{μ+1}` fixed-base
//! scalar multiplications now ride a precomputed window table
//! ([`zkspeed_curve::FixedBaseTable`]); `baseline/*` times the old
//! double-and-add ladder on the same scalars so the speedup is recorded in
//! the bench history (the ROADMAP target is ≥3× at μ = 14).

use zkspeed_curve::{FixedBaseTable, G1Projective};
use zkspeed_field::Fr;
use zkspeed_pcs::Srs;
use zkspeed_rt::bench::{black_box, Harness};

fn main() {
    let mut h = Harness::new("setup");

    // Per-scalar-mul comparison at a fixed batch size: the table path vs
    // the double-and-add ladder it replaced.
    let scalars: Vec<Fr> = (0..256u64).map(|i| Fr::from_u64(i * i + 1)).collect();
    let g = G1Projective::generator();
    h.bench("baseline/double-and-add/256-muls", || {
        let points: Vec<G1Projective> = scalars.iter().map(|s| g.mul_scalar(s)).collect();
        black_box(G1Projective::batch_to_affine(&points))
    });
    let table = FixedBaseTable::for_generator();
    h.bench("table/mul/256-muls", || {
        let points: Vec<G1Projective> = scalars.iter().map(|s| table.mul(s)).collect();
        black_box(G1Projective::batch_to_affine(&points))
    });
    h.bench("table/build", || black_box(FixedBaseTable::for_generator()));

    // Full setups at workload-suite scale (μ = 14 is the test-suite SRS;
    // the service bench and integration tests provision this exact size).
    for mu in [12usize, 14] {
        let tau: Vec<Fr> = (0..mu).map(|i| Fr::from_u64(2 * i as u64 + 3)).collect();
        h.bench(format!("srs/mu{mu}"), || {
            black_box(Srs::try_setup_with_tau(mu, tau.clone()).expect("setup fits"))
        });
    }

    h.finish();
}
