//! Regenerates Figure 12: CPU vs zkSpeed runtime breakdown at 2^20 gates.

use zkspeed_bench::{banner, ms, pct, section};
use zkspeed_core::{ChipConfig, CpuKernelShares, CpuModel, Workload};

fn main() {
    banner("Figure 12 reproduction: runtime breakdown at 2^20 gates");

    section("a) CPU (calibrated model, Figure 12a shares)");
    let total = CpuModel::total_seconds(20);
    let s = CpuKernelShares::paper();
    println!("total {:.0} ms", ms(total));
    println!(
        "  Sparse MSMs {:.1}%  Gate Identity {:.1}%  Create PermCheck MLEs {:.1}%  PermCheck dense MSMs {:.1}%",
        pct(s.sparse_msms), pct(s.gate_identity), pct(s.create_permcheck_mles), pct(s.permcheck_dense_msms)
    );
    println!(
        "  PermCheck {:.1}%  Batch Evals {:.1}%  MLE Combine {:.1}%  OpenCheck {:.1}%  PolyOpen dense MSMs {:.1}%",
        pct(s.permcheck), pct(s.batch_evals), pct(s.mle_combine), pct(s.opencheck), pct(s.polyopen_dense_msms)
    );

    section("b) zkSpeed with 2 TB/s (this model, per protocol step)");
    let chip = ChipConfig::table5_design();
    let sim = chip.simulate(&Workload::standard(20));
    let t = sim.total_seconds();
    let names = [
        "Witness MSMs",
        "Gate Identity",
        "Wire Identity",
        "Batch Evals",
        "Batch Evals & Poly Open",
    ];
    println!("total {:.3} ms  (paper: 11.405 ms)", ms(t));
    for (name, sec) in names.iter().zip(sim.step_seconds.iter()) {
        println!(
            "  {:<24} {:>8.3} ms  ({:>5.1}%)",
            name,
            ms(*sec),
            pct(sec / t)
        );
    }
    println!();
    println!("Expected shape (paper 12b): Wire Identity ~48.5%, Batch Evals & Poly Open ~35.4%,");
    println!("Witness MSMs ~7.8%, Gate Identity ~8.2%.");
}
