//! Regenerates Figure 11: MSM- and SumCheck-kernel speedups as PE count and
//! off-chip bandwidth scale, normalized to 1 PE at 512 GB/s.

use zkspeed_bench::banner;
use zkspeed_core::{scaling_study, Workload};

fn main() {
    let num_vars: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    banner(&format!(
        "Figure 11 reproduction: PE / bandwidth scaling at 2^{num_vars} gates"
    ));
    let workload = Workload::standard(num_vars);
    let pes = [1usize, 2, 4, 8, 16];
    let bws = [512.0, 1024.0, 2048.0, 4096.0];
    let study = scaling_study(&workload, &pes, &bws);
    for (name, points) in [
        ("MSM kernels", &study.msm),
        ("SumCheck kernels", &study.sumcheck),
    ] {
        println!("\n{name} (speedup vs 1 PE @ 512 GB/s)");
        print!("{:>10}", "PEs");
        for bw in bws {
            print!("{:>12.0}", bw);
        }
        println!();
        for &pe in &pes {
            print!("{pe:>10}");
            for &bw in &bws {
                let s = points
                    .iter()
                    .find(|p| p.pes == pe && p.bandwidth_gbps == bw)
                    .map(|p| p.speedup)
                    .unwrap_or(f64::NAN);
                print!("{s:>12.2}");
            }
            println!();
        }
    }
    println!();
    println!("Expected shape (paper): MSMs scale with PEs and are insensitive to bandwidth;");
    println!("SumChecks saturate with PEs at low bandwidth and recover with more bandwidth.");
}
