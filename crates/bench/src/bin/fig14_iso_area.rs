//! Regenerates Figure 14: speedup over the CPU at iso-CPU-area designs for
//! problem sizes 2^17-2^23, per kernel, plus the geometric means.

use zkspeed_bench::banner;
use zkspeed_core::{
    explore, geomean, pareto_frontier, pick_iso_area, speedup_from_simulation, CpuModel,
    DesignSpace, Workload,
};

fn main() {
    banner("Figure 14 reproduction: iso-CPU-area speedups, 2^17 - 2^23 gates");
    println!(
        "{:>6} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "mu", "Area", "Total", "WitMSM", "WireMSM", "OpenMSM", "ZeroChk", "PermChk", "OpenChk"
    );
    let mut totals = Vec::new();
    let mut per_kernel: Vec<Vec<f64>> = vec![Vec::new(); 6];
    for mu in 17..=23usize {
        let workload = Workload::standard(mu);
        // Pick a Pareto-optimal design close to the EPYC core area (296 mm^2),
        // excluding the PHY as the paper does.
        let space = DesignSpace::reduced_at_bandwidth(2048.0);
        let points = explore(&space, &workload);
        let frontier = pareto_frontier(&points);
        let adjusted: Vec<zkspeed_core::DesignPoint> = frontier
            .iter()
            .map(|p| zkspeed_core::DesignPoint {
                config: p.config,
                area_mm2: p.config.area().total_without_phy_mm2(),
                runtime_seconds: p.runtime_seconds,
            })
            .collect();
        let pick = pick_iso_area(&adjusted, CpuModel::CORE_AREA_MM2).expect("non-empty frontier");
        let sim = pick.config.simulate(&workload);
        let r = speedup_from_simulation(&sim, mu);
        println!(
            "{:>6} {:>10.1} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>9.0}",
            mu,
            pick.area_mm2,
            r.total,
            r.witness_msm,
            r.wiring_msm,
            r.polyopen_msm,
            r.zerocheck,
            r.permcheck,
            r.opencheck
        );
        totals.push(r.total);
        for (v, bucket) in [
            r.witness_msm,
            r.wiring_msm,
            r.polyopen_msm,
            r.zerocheck,
            r.permcheck,
            r.opencheck,
        ]
        .iter()
        .zip(per_kernel.iter_mut())
        {
            bucket.push(*v);
        }
    }
    println!();
    println!(
        "geomean total speedup: {:.0}x  (paper: 801x; >=2 orders of magnitude expected)",
        geomean(&totals)
    );
    let names = [
        "Witness MSMs",
        "Wiring MSMs",
        "PolyOpen MSMs",
        "ZeroCheck",
        "PermCheck",
        "OpenCheck",
    ];
    for (name, vals) in names.iter().zip(per_kernel.iter()) {
        println!("geomean {name}: {:.0}x", geomean(vals));
    }
}
