//! Regenerates Figure 10: area and runtime breakdown for four Pareto points
//! (A-D), one per bandwidth class, at 2^20 gates.

use zkspeed_bench::{banner, ms, pct, section};
use zkspeed_core::{explore, pareto_frontier, ChipConfig, DesignSpace, Workload};

fn breakdown(label: &str, config: &ChipConfig, workload: &Workload) {
    section(label);
    let area = config.area();
    let total = area.total_mm2();
    println!(
        "total area {total:.1} mm^2, bandwidth {:.0} GB/s",
        config.memory.bandwidth_gbps
    );
    println!(
        "  area %: MSM {:.1}  SumCheck {:.1}  MLE-Combine {:.1}  MTU {:.1}  on-chip mem {:.1}  HBM PHY {:.1}  other {:.1}",
        pct(area.msm / total),
        pct(area.sumcheck / total),
        pct(area.mle_combine / total),
        pct(area.mtu / total),
        pct(area.sram / total),
        pct(area.hbm_phy / total),
        pct((area.mle_update + area.construct_nd + area.fracmle + area.sha3 + area.interconnect) / total),
    );
    let sim = config.simulate(workload);
    let t = sim.total_seconds();
    println!(
        "  runtime {:.3} ms; %: WitnessMSM {:.1}  WiringMSM {:.1}  PolyOpenMSM {:.1}  ZeroCheck {:.1}  PermCheck {:.1}  OpenCheck {:.1}  FinalEval {:.1}",
        ms(t),
        pct(sim.kernels.witness_msm / t),
        pct(sim.kernels.wiring_msm / t),
        pct(sim.kernels.polyopen_msm / t),
        pct(sim.kernels.zerocheck / t),
        pct(sim.kernels.permcheck / t),
        pct(sim.kernels.opencheck / t),
        pct(sim.kernels.final_eval / t),
    );
}

fn main() {
    banner("Figure 10 reproduction: area & runtime breakdown of Pareto points A-D");
    let workload = Workload::standard(20);
    for (label, bw) in [
        ("A (512 GB/s)", 512.0),
        ("B (1 TB/s)", 1024.0),
        ("C (2 TB/s)", 2048.0),
        ("D (4 TB/s)", 4096.0),
    ] {
        let space = DesignSpace::reduced_at_bandwidth(bw);
        let frontier = pareto_frontier(&explore(&space, &workload));
        // Highest-performing design at this bandwidth = first frontier entry.
        if let Some(best) = frontier.first() {
            breakdown(label, &best.config, &workload);
        }
    }
    println!();
    println!("Expected shape (paper): SumCheck area share grows from A to D, the MSM unit's");
    println!("absolute area stays constant, and the SumCheck-related runtime share shrinks.");
}
