//! Regenerates the resource-sharing claims of Sections 4.1.4, 4.3.3 and 4.5:
//! modular-multiplier sharing inside the SumCheck PE and MLE Combine unit,
//! and multi-function sharing of the tree unit.

use zkspeed_bench::banner;
use zkspeed_hw::params::{
    MLE_COMBINE_MODMULS_SHARED, MLE_COMBINE_MODMULS_UNSHARED, MODMUL_255_MM2,
    SUMCHECK_PE_MODMULS_SHARED, SUMCHECK_PE_MODMULS_UNSHARED,
};
use zkspeed_hw::MtuConfig;

fn main() {
    banner("Resource-sharing savings (Sections 4.1.4, 4.3.3, 4.5)");
    let sc_shared = SUMCHECK_PE_MODMULS_SHARED as f64 * MODMUL_255_MM2;
    let sc_unshared = SUMCHECK_PE_MODMULS_UNSHARED as f64 * MODMUL_255_MM2;
    println!(
        "SumCheck PE      : {} vs {} modmuls -> {:.2} vs {:.2} mm^2 ({:.1}% saved; paper: 48.9%)",
        SUMCHECK_PE_MODMULS_SHARED,
        SUMCHECK_PE_MODMULS_UNSHARED,
        sc_shared,
        sc_unshared,
        (1.0 - sc_shared / sc_unshared) * 100.0
    );
    let mc_shared = MLE_COMBINE_MODMULS_SHARED as f64 * MODMUL_255_MM2;
    let mc_unshared = MLE_COMBINE_MODMULS_UNSHARED as f64 * MODMUL_255_MM2;
    println!(
        "MLE Combine unit : {} vs {} modmuls -> {:.2} vs {:.2} mm^2 ({:.1}% saved; paper: 41%)",
        MLE_COMBINE_MODMULS_SHARED,
        MLE_COMBINE_MODMULS_UNSHARED,
        mc_shared,
        mc_unshared,
        (1.0 - mc_shared / mc_unshared) * 100.0
    );
    let mtu = MtuConfig::default();
    println!(
        "Multifunction Tree: shared {:.2} mm^2 vs dedicated {:.2} mm^2 ({:.1}% saved; paper: 41.6%)",
        mtu.area_mm2(),
        mtu.unshared_area_mm2(),
        (1.0 - mtu.area_mm2() / mtu.unshared_area_mm2()) * 100.0
    );
}
