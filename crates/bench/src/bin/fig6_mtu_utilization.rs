//! Regenerates the Figure 6 / Section 4.3.3 claim: the Multifunction Tree
//! unit's PEs stay >99% utilized on large workloads thanks to the hybrid
//! DFS/BFS traversal, and the multi-function sharing saves ~41.6% area.

use zkspeed_bench::banner;
use zkspeed_hw::MtuConfig;

fn main() {
    banner("Figure 6 / Section 4.3 reproduction: Multifunction Tree unit");
    let mtu = MtuConfig::default();
    println!("leaf PEs: {}, total PEs: {}", 32, mtu.total_pes());
    println!(
        "{:>10} {:>16} {:>14}",
        "Problem", "Tree-pass cycles", "Utilization"
    );
    for mu in [8usize, 12, 16, 20, 23] {
        println!(
            "{:>10} {:>16.0} {:>13.2}%",
            format!("2^{mu}"),
            mtu.tree_pass_cycles(mu),
            mtu.utilization(mu) * 100.0
        );
    }
    println!();
    println!(
        "Shared-unit area: {:.2} mm^2; dedicated units would need {:.2} mm^2 ({:.1}% savings)",
        mtu.area_mm2(),
        mtu.unshared_area_mm2(),
        (1.0 - mtu.area_mm2() / mtu.unshared_area_mm2()) * 100.0
    );
}
