//! Regenerates Table 4: comparison of zkSpeed with the NoCap and SZKP+
//! accelerators at 2^24 constraints/gates.

use zkspeed_bench::banner;
use zkspeed_core::comparison_table;

fn main() {
    banner("Table 4 reproduction: cross-accelerator comparison at 2^24");
    for row in comparison_table() {
        println!("\n{}", row.name);
        println!("  protocol        : {}", row.protocol);
        println!("  main kernels    : {}", row.main_kernels);
        println!("  encoding        : {}", row.encoding);
        println!("  proof size      : {:.2} KB", row.proof_size_bytes / 1e3);
        println!("  setup           : {}", row.setup);
        println!("  CPU prover      : {:.1} s", row.cpu_prover_seconds);
        println!("  HW prover       : {:.1} ms", row.hw_prover_ms);
        println!("  verifier        : {:.1} ms", row.verifier_ms);
        println!("  chip area       : {:.1} mm^2", row.chip_area_mm2);
        println!("  average power   : {:.1} W", row.power_w);
    }
    println!();
    println!("NoCap and SZKP+ rows quote the paper's published values; the zkSpeed row is");
    println!("produced by this repository's chip model (paper zkSpeed row: 145.5 s CPU,");
    println!("171.61 ms HW, 366.46 mm^2, 170.88 W).");
}
