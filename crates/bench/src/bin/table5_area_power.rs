//! Regenerates Table 5: area and power breakdown of the highlighted 366 mm^2
//! zkSpeed design.
//!
//! Pass `--json` to emit the configuration and both breakdowns as a stable
//! machine-readable JSON document instead of the human-readable table.

use zkspeed_bench::banner;
use zkspeed_core::ChipConfig;
use zkspeed_rt::{JsonValue, ToJson};

fn main() {
    if std::env::args().any(|a| a == "--json") {
        let chip = ChipConfig::table5_design();
        let doc = JsonValue::Object(vec![
            ("config".into(), chip.to_json()),
            ("area_mm2".into(), chip.area().to_json()),
            ("power_w".into(), chip.power().to_json()),
            (
                "total_area_mm2".into(),
                JsonValue::Float(chip.area().total_mm2()),
            ),
            (
                "total_power_w".into(),
                JsonValue::Float(chip.power().total_w()),
            ),
        ]);
        println!("{}", doc.pretty());
        return;
    }
    banner("Table 5 reproduction: area and power of the highlighted design");
    let chip = ChipConfig::table5_design();
    let a = chip.area();
    let p = chip.power();
    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>12}",
        "Module", "Area (mm^2)", "Paper", "Power (W)", "Paper"
    );
    let rows: [(&str, f64, f64, f64, f64); 8] = [
        ("MSM (16 PEs)", a.msm, 105.64, p.msm, 76.19),
        ("SumCheck (2 PEs)", a.sumcheck, 24.96, p.sumcheck, 5.38),
        ("Construct N&D", a.construct_nd, 1.35, p.construct_nd, 0.19),
        ("FracMLE", a.fracmle, 1.92, p.fracmle, 0.25),
        ("MLE Combine", a.mle_combine, 9.56, p.mle_combine, 0.34),
        ("MLE Update", a.mle_update, 5.84, p.mle_update, 1.13),
        ("Multifunction Tree", a.mtu, 12.28, p.mtu, 4.16),
        ("Other", a.sha3 + a.interconnect, 1.98, p.other, 0.04),
    ];
    for (name, area, parea, power, ppower) in rows {
        println!("{name:<28} {area:>12.2} {parea:>12.2} {power:>12.2} {ppower:>12.2}");
    }
    println!(
        "{:<28} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
        "Total Compute",
        a.compute_mm2(),
        163.53,
        p.msm
            + p.sumcheck
            + p.construct_nd
            + p.fracmle
            + p.mle_combine
            + p.mle_update
            + p.mtu
            + p.other,
        87.68
    );
    println!(
        "{:<28} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
        "SRAM", a.sram, 143.73, p.sram, 19.60
    );
    println!(
        "{:<28} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
        "HBM3 (2 PHYs)", a.hbm_phy, 59.20, p.memory, 63.60
    );
    println!(
        "{:<28} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
        "Total",
        a.total_mm2(),
        366.46,
        p.total_w(),
        170.88
    );
}
