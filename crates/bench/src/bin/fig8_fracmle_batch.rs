//! Regenerates Figure 8: FracMLE latency imbalance and stand-alone area as a
//! function of the Montgomery-batching batch size (optimum at b = 64).

use zkspeed_bench::banner;
use zkspeed_hw::FracMleConfig;

fn main() {
    banner("Figure 8 reproduction: FracMLE batch-size optimization");
    println!(
        "{:>12} {:>20} {:>16} {:>14}",
        "Batch size", "Latency imbalance", "Inverse units", "Area (mm^2)"
    );
    for k in 1..=8usize {
        let b = 1usize << k;
        let cfg = FracMleConfig {
            pes: 1,
            batch_size: b,
        };
        println!(
            "{:>12} {:>20.0} {:>16} {:>14.2}",
            b,
            cfg.latency_imbalance_cycles(),
            cfg.num_inverse_engines(),
            cfg.standalone_area_mm2()
        );
    }
    println!("\nBoth curves reach their minimum at or near b = 64, the paper's chosen batch size.");
}
