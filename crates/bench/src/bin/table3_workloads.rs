//! Regenerates Table 3: end-to-end CPU vs zkSpeed runtime for the five
//! named real-world workloads.

use zkspeed_bench::{banner, ms};
use zkspeed_core::{geomean, ChipConfig, CpuModel, Workload};
use zkspeed_hyperplonk::NAMED_WORKLOADS;

fn main() {
    banner("Table 3 reproduction: real-world workloads");
    println!(
        "{:<32} {:>6} {:>12} {:>14} {:>10} {:>22}",
        "Workload", "mu", "CPU (ms)", "zkSpeed (ms)", "Speedup", "Paper (CPU/zkSpeed ms)"
    );
    let chip = ChipConfig::table5_design();
    let mut speedups = Vec::new();
    for w in NAMED_WORKLOADS.iter() {
        let cpu = CpuModel::total_seconds(w.num_vars);
        let sim = chip.simulate(&Workload::standard(w.num_vars));
        let speedup = cpu / sim.total_seconds();
        speedups.push(speedup);
        println!(
            "{:<32} {:>6} {:>12.0} {:>14.3} {:>9.0}x {:>12.0} / {:<8.3}",
            w.name,
            w.num_vars,
            ms(cpu),
            ms(sim.total_seconds()),
            speedup,
            w.paper_cpu_ms,
            w.paper_zkspeed_ms
        );
    }
    println!();
    println!(
        "geomean speedup: {:.0}x (paper: 801x with per-size Pareto-optimal designs)",
        geomean(&speedups)
    );
}
