//! Regenerates Figure 5: MSM bucket-aggregation latency, SZKP's serial
//! schedule versus zkSpeed's grouped schedule, for window sizes 7-10.

use zkspeed_bench::banner;
use zkspeed_hw::{aggregation_cycles, AggregationSchedule};

fn main() {
    banner("Figure 5 reproduction: bucket aggregation latency (cycles)");
    println!(
        "{:>12} {:>14} {:>14} {:>12}",
        "Window", "SZKP", "zkSpeed", "Reduction"
    );
    let mut reductions = Vec::new();
    for w in 7..=10usize {
        let buckets = (1usize << w) - 1;
        let serial = aggregation_cycles(buckets, AggregationSchedule::SzkpSerial);
        let grouped = aggregation_cycles(buckets, AggregationSchedule::Grouped { group_size: 16 });
        let reduction = 1.0 - grouped / serial;
        reductions.push(reduction);
        println!(
            "{:>12} {:>14.0} {:>14.0} {:>11.1}%",
            w,
            serial,
            grouped,
            reduction * 100.0
        );
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64 * 100.0;
    println!("\nAverage reduction: {avg:.1}% (paper reports an average of 92%)");
}
