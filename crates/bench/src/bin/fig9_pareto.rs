//! Regenerates Figure 9: area-vs-runtime Pareto frontiers for 2^20 gates
//! under the seven off-chip bandwidths of Table 2, plus the global frontier.

use zkspeed_bench::{banner, ms, section};
use zkspeed_core::{explore, pareto_frontier, DesignSpace, Workload};

fn main() {
    let num_vars: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    banner(&format!(
        "Figure 9 reproduction: Pareto frontiers at 2^{num_vars} gates"
    ));
    let workload = Workload::standard(num_vars);
    let mut all_points = Vec::new();
    for &bw in &zkspeed_hw::params::DSE_BANDWIDTHS_GBPS {
        let space = DesignSpace::reduced_at_bandwidth(bw);
        let points = explore(&space, &workload);
        let frontier = pareto_frontier(&points);
        section(&format!(
            "{:.0} GB/s: {} designs, {} Pareto-optimal",
            bw,
            points.len(),
            frontier.len()
        ));
        println!("{:>14} {:>14}", "Runtime (ms)", "Area (mm^2)");
        for p in frontier.iter().take(8) {
            println!("{:>14.3} {:>14.1}", ms(p.runtime_seconds), p.area_mm2);
        }
        all_points.extend(points);
    }
    let global = pareto_frontier(&all_points);
    section(&format!("global Pareto frontier ({} points)", global.len()));
    println!(
        "{:>14} {:>14} {:>12} {:>10} {:>8}",
        "Runtime (ms)", "Area (mm^2)", "BW (GB/s)", "MSM PEs", "SC PEs"
    );
    for p in &global {
        println!(
            "{:>14.3} {:>14.1} {:>12.0} {:>10} {:>8}",
            ms(p.runtime_seconds),
            p.area_mm2,
            p.config.memory.bandwidth_gbps,
            p.config.msm.total_pes(),
            p.config.sumcheck.pes
        );
    }
    let best_low_bw = all_points
        .iter()
        .filter(|p| p.config.memory.bandwidth_gbps <= 512.0)
        .map(|p| p.runtime_seconds)
        .fold(f64::INFINITY, f64::min);
    let best_high_bw = all_points
        .iter()
        .filter(|p| p.config.memory.bandwidth_gbps >= 1024.0)
        .map(|p| p.runtime_seconds)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nBest runtime at <= 512 GB/s: {:.3} ms; best at >= 1 TB/s: {:.3} ms ({:.2}x faster)",
        ms(best_low_bw),
        ms(best_high_bw),
        best_low_bw / best_high_bw
    );
    println!("(The paper's key Figure 9 observation: HBM3-scale bandwidths yield >2x speedups");
    println!(" over 512 GB/s designs in the high-performance region of the frontier.)");
}
