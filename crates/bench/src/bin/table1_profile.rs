//! Regenerates Table 1: modmuls, input/output sizes and arithmetic intensity
//! of the twelve profiled HyperPlonk kernels.
//!
//! The paper profiles the arkworks CPU library at 2^20 gates; here the
//! instrumented functional layer is profiled at a laptop-friendly size
//! (default 2^12, override with the first CLI argument) and the per-kernel
//! modmul counts are also extrapolated linearly to 2^20 (every kernel is
//! O(n) in the gate count).

use zkspeed_bench::{banner, section};
use zkspeed_hyperplonk::profile_kernels;
use zkspeed_rt::rngs::StdRng;
use zkspeed_rt::SeedableRng;

fn main() {
    let num_vars: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    banner(&format!(
        "Table 1 reproduction: kernel profile at 2^{num_vars} gates (paper: 2^20)"
    ));
    let mut rng = StdRng::seed_from_u64(1);
    let rows = profile_kernels(num_vars, &mut rng);
    let scale = (1u64 << 20) as f64 / (1u64 << num_vars) as f64;

    section("measured at this size / extrapolated to 2^20");
    println!(
        "{:<22} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "Kernel", "Modmuls", "Modmuls@2^20", "In (MB)", "Out (MB)", "AI (mm/B)"
    );
    for r in &rows {
        println!(
            "{:<22} {:>14} {:>14.3e} {:>12.3} {:>12.3} {:>10.3}",
            r.kernel,
            r.modmuls,
            r.modmuls as f64 * scale,
            r.input_bytes as f64 * scale / 1e6,
            r.output_bytes as f64 * scale / 1e6,
            r.arithmetic_intensity(),
        );
    }
    println!();
    println!("Paper shape check: the three MSM kernels must have the highest arithmetic");
    println!("intensity and 'All MLE Updates' the lowest — see EXPERIMENTS.md.");
}
