//! Regenerates Figure 13: per-unit utilization and compute-area share for
//! the highlighted (Table 5) design at 2^20 gates.

use zkspeed_bench::{banner, pct};
use zkspeed_core::{ChipConfig, Unit, Workload};

fn main() {
    banner("Figure 13 reproduction: unit utilization and compute-area share");
    let chip = ChipConfig::table5_design();
    let sim = chip.simulate(&Workload::standard(20));
    let util = sim.utilization();
    let shares = chip.area().compute_area_shares();
    println!(
        "{:<22} {:>14} {:>16}",
        "Unit", "Utilization", "Area share (AU)"
    );
    for (i, unit) in Unit::ALL.iter().enumerate() {
        println!(
            "{:<22} {:>13.1}% {:>15.2}%",
            unit.name(),
            pct(util[i]),
            pct(shares[i])
        );
    }
    println!();
    println!("Expected shape (paper): the MSM unit has both the largest area share (~64.6%)");
    println!("and the highest utilization; SHA3 is tiny and rarely used.");
}
