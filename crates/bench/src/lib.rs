//! Shared helpers for the experiment harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the zkSpeed
//! paper (see DESIGN.md for the full index). The helpers here keep the
//! console output consistent so EXPERIMENTS.md can quote it directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints a top-level experiment banner.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("--- {title} ---");
}

/// Formats a number of bytes as mebibytes.
pub fn mib(bytes: f64) -> f64 {
    bytes / (1u64 << 20) as f64
}

/// Formats seconds as milliseconds.
pub fn ms(seconds: f64) -> f64 {
    seconds * 1e3
}

/// Formats a fraction as a percentage.
pub fn pct(fraction: f64) -> f64 {
    fraction * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(mib((1u64 << 20) as f64), 1.0);
        assert_eq!(ms(0.5), 500.0);
        assert_eq!(pct(0.25), 25.0);
        banner("t");
        section("s");
    }
}
