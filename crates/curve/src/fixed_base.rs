//! Precomputed fixed-base window tables for repeated scalar multiplication
//! of one base point.
//!
//! The universal setup multiplies the *same* generator by `2^{μ+1}` distinct
//! scalars (one per Lagrange-basis point across every level), and a proving
//! service re-runs setup on its serving path whenever it provisions a new
//! SRS. Double-and-add pays ~255 doublings plus ~127 additions per scalar;
//! with a table of every window digit's multiple precomputed once, each
//! scalar multiplication collapses to `⌈255/w⌉` mixed additions of table
//! entries — no doublings at all. At the default `w = 8` that is 32 mixed
//! additions per scalar, an order-of-magnitude fewer Fq multiplications,
//! amortizing the one-time table build (~2 · 2^w · ⌈255/w⌉ point ops) after
//! a few hundred scalars.

use zkspeed_field::Fr;

use crate::g1::{G1Affine, G1Projective};

/// Default window width in bits. 8 bits ⇒ 32 windows of 255 affine entries
/// each (~8k points, ~800 KB) — small enough to build in milliseconds,
/// wide enough that each scalar multiplication is 32 mixed additions.
pub const FIXED_BASE_DEFAULT_WINDOW_BITS: usize = 8;

/// A fixed-base window table: for every `w`-bit window of the scalar, the
/// affine multiples `d · 2^{w·i} · B` for `d = 1 … 2^w − 1`.
///
/// Built once per base point with [`FixedBaseTable::new`], then
/// [`FixedBaseTable::mul`] computes `s · B` with one mixed addition per
/// window and zero doublings.
#[derive(Clone, Debug)]
pub struct FixedBaseTable {
    window_bits: usize,
    /// `windows[i][d - 1] = d · 2^{w·i} · B` (digit 0 contributes nothing
    /// and is not stored).
    windows: Vec<Vec<G1Affine>>,
}

impl FixedBaseTable {
    /// Precomputes the window table for `base` with `window_bits`-wide
    /// windows.
    ///
    /// # Panics
    ///
    /// Panics if `window_bits` is 0 or greater than 16 (larger tables cost
    /// more to build than they could ever save).
    pub fn new(base: &G1Projective, window_bits: usize) -> Self {
        assert!(
            (1..=16).contains(&window_bits),
            "fixed-base window bits must be in 1..=16"
        );
        let digits_per_window = (1usize << window_bits) - 1;
        let num_windows = (Fr::NUM_BITS as usize).div_ceil(window_bits);
        // Projective pass: window base B_i = 2^{w·i}·B by repeated doubling,
        // digit entries by cumulative addition; one shared batch inversion
        // converts everything to affine at the end.
        let mut all = Vec::with_capacity(num_windows * digits_per_window);
        let mut window_base = *base;
        for _ in 0..num_windows {
            let mut acc = window_base;
            for _ in 0..digits_per_window {
                all.push(acc);
                acc = acc.add(&window_base);
            }
            for _ in 0..window_bits {
                window_base = window_base.double();
            }
        }
        let affine = G1Projective::batch_to_affine(&all);
        let windows = affine
            .chunks(digits_per_window)
            .map(|chunk| chunk.to_vec())
            .collect();
        Self {
            window_bits,
            windows,
        }
    }

    /// Precomputes the table for the group generator at the default window
    /// width.
    pub fn for_generator() -> Self {
        Self::new(&G1Projective::generator(), FIXED_BASE_DEFAULT_WINDOW_BITS)
    }

    /// The window width in bits.
    pub fn window_bits(&self) -> usize {
        self.window_bits
    }

    /// Total number of precomputed affine points.
    pub fn size_in_points(&self) -> usize {
        self.windows.iter().map(Vec::len).sum()
    }

    /// Computes `scalar · B` as one table lookup + mixed addition per
    /// nonzero scalar window.
    pub fn mul(&self, scalar: &Fr) -> G1Projective {
        let limbs = scalar.to_canonical_limbs();
        let mut acc = G1Projective::identity();
        let w = self.window_bits;
        for (i, window) in self.windows.iter().enumerate() {
            let digit = window_digit(&limbs, i * w, w);
            if digit != 0 {
                acc = acc.add_mixed(&window[digit - 1]);
            }
        }
        acc
    }
}

/// Extracts the `width`-bit window starting at bit `lo` from little-endian
/// 64-bit limbs (bits beyond the scalar length read as zero).
fn window_digit(limbs: &[u64], lo: usize, width: usize) -> usize {
    let word = lo / 64;
    let shift = lo % 64;
    if word >= limbs.len() {
        return 0;
    }
    let mut bits = limbs[word] >> shift;
    if shift + width > 64 && word + 1 < limbs.len() {
        bits |= limbs[word + 1] << (64 - shift);
    }
    (bits as usize) & ((1usize << width) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkspeed_rt::rngs::StdRng;
    use zkspeed_rt::{Rng, SeedableRng};

    #[test]
    fn table_matches_double_and_add() {
        let mut rng = StdRng::seed_from_u64(0xf1_5ed);
        let base = G1Projective::random(&mut rng);
        for window_bits in [1usize, 3, 8, 13] {
            let table = FixedBaseTable::new(&base, window_bits);
            assert_eq!(table.window_bits(), window_bits);
            for _ in 0..8 {
                let s = Fr::random(&mut rng);
                assert_eq!(table.mul(&s), base.mul_scalar(&s), "w = {window_bits}");
            }
        }
    }

    #[test]
    fn table_handles_edge_scalars() {
        let table = FixedBaseTable::for_generator();
        let g = G1Projective::generator();
        assert_eq!(table.mul(&Fr::zero()), G1Projective::identity());
        assert_eq!(table.mul(&Fr::one()), g);
        let minus_one = -Fr::one();
        assert_eq!(table.mul(&minus_one), g.mul_scalar(&minus_one));
        // All-ones-per-window digits.
        let x = Fr::from_u64(u64::MAX);
        assert_eq!(table.mul(&x), g.mul_scalar(&x));
    }

    #[test]
    fn table_shape() {
        let table = FixedBaseTable::for_generator();
        let w = FIXED_BASE_DEFAULT_WINDOW_BITS;
        let windows = (Fr::NUM_BITS as usize).div_ceil(w);
        assert_eq!(table.size_in_points(), windows * ((1 << w) - 1));
        // Every stored point is on the curve (batch conversion preserved
        // validity).
        let mut rng = StdRng::seed_from_u64(9);
        let i = rng.gen_range(0..table.windows.len());
        for p in &table.windows[i] {
            assert!(p.to_projective().is_on_curve());
        }
    }

    #[test]
    fn window_digit_straddles_limbs() {
        let limbs = [u64::MAX, 0b1011, 0, 0];
        // 8-bit window starting at bit 60: low 4 bits from limb 0 (all
        // ones), high 4 bits from limb 1 (0b1011).
        assert_eq!(window_digit(&limbs, 60, 8), 0b1011_1111);
        assert_eq!(window_digit(&limbs, 256, 8), 0);
    }
}
