//! The BLS12-381 G1 group.
//!
//! Points are represented either in affine form ([`G1Affine`]) or in
//! homogeneous projective form ([`G1Projective`]). Group operations use the
//! *complete* addition formulas of Renes–Costello–Batina (EUROCRYPT 2016)
//! specialized to `a = 0`, `b = 4`, so there are no exceptional cases for
//! doubling or the identity — the same property that lets zkSpeed's PADD
//! unit be a single fully-pipelined datapath.
//!
//! The paper's MSM unit cost model counts one point addition (PADD) as "tens
//! of modular multiplications"; the exact operation count of the formulas
//! used here is exposed as [`PADD_FQ_MULS`] and [`PDBL_FQ_MULS`] so the
//! hardware model and the functional layer agree by construction.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use zkspeed_field::{Fq, Fr};
use zkspeed_rt::codec::{DecodeError, Reader};
use zkspeed_rt::Rng;

/// Number of Fq multiplications in one complete projective point addition
/// (Renes–Costello–Batina Algorithm 7 for a = 0: 12 mul + 2 mul-by-3b).
pub const PADD_FQ_MULS: usize = 14;

/// Number of Fq multiplications in one mixed projective + affine point
/// addition (Renes–Costello–Batina Algorithm 8 for a = 0: 11 mul +
/// 2 mul-by-3b). One multiplication cheaper than [`PADD_FQ_MULS`] because
/// `Z₂ = 1` folds away the `Z₁·Z₂` product.
pub const PADD_MIXED_FQ_MULS: usize = 13;

/// Number of Fq multiplications attributed to one batch-affine addition:
/// three amortized Montgomery batch-inversion multiplications plus
/// `λ = Δy·(Δx)⁻¹`, `λ²` and `λ·(x₁ − x₃)`. The shared BEEA inversion each
/// batch round pays on top is shift/subtract-based (no multiplier use) and
/// is tracked separately in `MsmStats::batch_inversions`.
pub const BATCH_AFFINE_ADD_FQ_MULS: usize = 6;

/// Number of Fq multiplications in one projective doubling
/// (Renes–Costello–Batina Algorithm 9 for a = 0: 6 mul + 2 mul-by-3b).
pub const PDBL_FQ_MULS: usize = 8;

/// The curve constant `b = 4` of BLS12-381 G1 (`y² = x³ + 4`).
fn b() -> Fq {
    Fq::from_u64(4)
}

/// `3·b = 12`, used by the complete formulas.
fn b3() -> Fq {
    Fq::from_u64(12)
}

/// A point on BLS12-381 G1 in affine coordinates.
///
/// The identity (point at infinity) is encoded with the `infinity` flag.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct G1Affine {
    /// The affine x-coordinate (meaningless if `infinity` is set).
    pub x: Fq,
    /// The affine y-coordinate (meaningless if `infinity` is set).
    pub y: Fq,
    /// Whether this is the point at infinity.
    pub infinity: bool,
}

impl Default for G1Affine {
    fn default() -> Self {
        Self::identity()
    }
}

impl fmt::Display for G1Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.infinity {
            write!(f, "G1(infinity)")
        } else {
            write!(f, "G1(x={}, y={})", self.x, self.y)
        }
    }
}

impl G1Affine {
    /// Returns the point at infinity.
    pub fn identity() -> Self {
        Self {
            x: Fq::zero(),
            y: Fq::one(),
            infinity: true,
        }
    }

    /// Returns the standard BLS12-381 G1 generator.
    pub fn generator() -> Self {
        let x = Fq::from_hex_be(
            "17f1d3a73197d7942695638c4fa9ac0fc3688c4f9774b905a14e3a3f171bac586c55e83ff97a1aeffb3af00adb22c6bb",
        )
        .expect("generator x is canonical");
        let y = Fq::from_hex_be(
            "08b3f481e3aaa0f1a09e30ed741d8ae4fcf5e095d5d00af600db18cb2c04b3edd03cc744a2888ae40caa232946c5e7e1",
        )
        .expect("generator y is canonical");
        Self {
            x,
            y,
            infinity: false,
        }
    }

    /// Returns `true` if this is the point at infinity.
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// Checks that the point satisfies the curve equation `y² = x³ + 4`.
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        self.y.square() == self.x.square() * self.x + b()
    }

    /// Converts to projective coordinates.
    pub fn to_projective(&self) -> G1Projective {
        if self.infinity {
            G1Projective::identity()
        } else {
            G1Projective {
                x: self.x,
                y: self.y,
                z: Fq::one(),
            }
        }
    }

    /// Negates the point.
    pub fn neg(&self) -> Self {
        if self.infinity {
            *self
        } else {
            Self {
                x: self.x,
                y: -self.y,
                infinity: false,
            }
        }
    }

    /// Appends the canonical [`G1_ENCODED_BYTES`]-byte encoding: `x` and `y`
    /// as 48-byte little-endian canonical field elements followed by an
    /// infinity flag byte. The identity encodes as all-zero coordinates with
    /// the flag set, so every point has exactly one encoding.
    pub fn write_canonical(&self, out: &mut Vec<u8>) {
        if self.infinity {
            out.extend_from_slice(&[0u8; 96]);
            out.push(1);
        } else {
            out.extend_from_slice(&self.x.to_bytes_le());
            out.extend_from_slice(&self.y.to_bytes_le());
            out.push(0);
        }
    }

    /// Reads a canonical encoding produced by [`Self::write_canonical`],
    /// rejecting non-canonical field elements, non-canonical identity
    /// encodings, and points off the curve.
    pub fn read_canonical(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let bytes = reader.take(G1_ENCODED_BYTES)?;
        let (x_bytes, y_bytes, flag) = (&bytes[..48], &bytes[48..96], bytes[96]);
        match flag {
            1 => {
                if x_bytes.iter().chain(y_bytes).any(|b| *b != 0) {
                    return Err(DecodeError::InvalidValue {
                        what: "G1 identity with nonzero coordinates",
                    });
                }
                Ok(Self::identity())
            }
            0 => {
                let x = Fq::from_bytes_le(x_bytes).ok_or(DecodeError::InvalidValue {
                    what: "non-canonical G1 x coordinate",
                })?;
                let y = Fq::from_bytes_le(y_bytes).ok_or(DecodeError::InvalidValue {
                    what: "non-canonical G1 y coordinate",
                })?;
                let point = Self {
                    x,
                    y,
                    infinity: false,
                };
                if !point.is_on_curve() {
                    return Err(DecodeError::InvalidValue {
                        what: "G1 point off the curve",
                    });
                }
                Ok(point)
            }
            _ => Err(DecodeError::InvalidValue {
                what: "G1 infinity flag",
            }),
        }
    }
}

/// Size in bytes of the canonical [`G1Affine::write_canonical`] encoding.
pub const G1_ENCODED_BYTES: usize = 97;

impl Neg for G1Affine {
    type Output = G1Affine;
    fn neg(self) -> G1Affine {
        G1Affine::neg(&self)
    }
}

impl From<G1Affine> for G1Projective {
    fn from(p: G1Affine) -> Self {
        p.to_projective()
    }
}

impl From<G1Projective> for G1Affine {
    fn from(p: G1Projective) -> Self {
        p.to_affine()
    }
}

/// A point on BLS12-381 G1 in homogeneous projective coordinates `(X : Y : Z)`
/// with `x = X/Z`, `y = Y/Z`; the identity is `(0 : 1 : 0)`.
#[derive(Copy, Clone, Debug)]
pub struct G1Projective {
    /// The projective X coordinate.
    pub x: Fq,
    /// The projective Y coordinate.
    pub y: Fq,
    /// The projective Z coordinate (zero exactly at the identity).
    pub z: Fq,
}

impl Default for G1Projective {
    fn default() -> Self {
        Self::identity()
    }
}

impl fmt::Display for G1Projective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_affine())
    }
}

impl PartialEq for G1Projective {
    fn eq(&self, other: &Self) -> bool {
        // (X1 : Y1 : Z1) == (X2 : Y2 : Z2) iff cross-products match.
        let self_id = self.is_identity();
        let other_id = other.is_identity();
        if self_id || other_id {
            return self_id && other_id;
        }
        self.x * other.z == other.x * self.z && self.y * other.z == other.y * self.z
    }
}

impl Eq for G1Projective {}

impl G1Projective {
    /// Returns the identity element `(0 : 1 : 0)`.
    pub fn identity() -> Self {
        Self {
            x: Fq::zero(),
            y: Fq::one(),
            z: Fq::zero(),
        }
    }

    /// Returns the standard generator in projective form.
    pub fn generator() -> Self {
        G1Affine::generator().to_projective()
    }

    /// Returns `true` if this is the identity element.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Checks the projective curve equation `Y²·Z = X³ + 4·Z³`.
    pub fn is_on_curve(&self) -> bool {
        if self.is_identity() {
            return true;
        }
        self.y.square() * self.z == self.x.square() * self.x + b() * self.z.square() * self.z
    }

    /// Converts to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> G1Affine {
        if self.is_identity() {
            return G1Affine::identity();
        }
        let zinv = self.z.invert().expect("nonzero z");
        G1Affine {
            x: self.x * zinv,
            y: self.y * zinv,
            infinity: false,
        }
    }

    /// Complete point addition (Renes–Costello–Batina 2016, Algorithm 7 with
    /// `a = 0`). Handles identity and doubling inputs without branches on
    /// secret data.
    pub fn add(&self, rhs: &Self) -> Self {
        let b3 = b3();
        let (x1, y1, z1) = (self.x, self.y, self.z);
        let (x2, y2, z2) = (rhs.x, rhs.y, rhs.z);

        let mut t0 = x1 * x2;
        let mut t1 = y1 * y2;
        let mut t2 = z1 * z2;
        let mut t3 = x1 + y1;
        let mut t4 = x2 + y2;
        t3 *= t4;
        t4 = t0 + t1;
        t3 -= t4;
        t4 = y1 + z1;
        let mut x3 = y2 + z2;
        t4 *= x3;
        x3 = t1 + t2;
        t4 -= x3;
        x3 = x1 + z1;
        let mut y3 = x2 + z2;
        x3 *= y3;
        y3 = t0 + t2;
        y3 = x3 - y3;
        x3 = t0 + t0;
        t0 = x3 + t0;
        t2 = b3 * t2;
        let mut z3 = t1 + t2;
        t1 -= t2;
        y3 = b3 * y3;
        x3 = t4 * y3;
        t2 = t3 * t1;
        x3 = t2 - x3;
        y3 *= t0;
        t1 *= z3;
        y3 = t1 + y3;
        t0 *= t3;
        z3 *= t4;
        z3 += t0;

        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point (Renes–Costello–Batina 2016,
    /// Algorithm 8 with `a = 0`): complete for every projective `self`, and
    /// one Fq multiplication cheaper than lifting to [`Self::add`] because
    /// `Z₂ = 1`. The affine identity is handled by an explicit guard (it has
    /// no `Z₂ = 1` representation).
    pub fn add_mixed(&self, rhs: &G1Affine) -> Self {
        if rhs.infinity {
            return *self;
        }
        let b3 = b3();
        let (x1, y1, z1) = (self.x, self.y, self.z);
        let (x2, y2) = (rhs.x, rhs.y);

        let mut t0 = x1 * x2;
        let mut t1 = y1 * y2;
        let mut t3 = x2 + y2;
        let mut t4 = x1 + y1;
        t3 *= t4;
        t4 = t0 + t1;
        t3 -= t4;
        t4 = y2 * z1;
        t4 += y1;
        let mut y3 = x2 * z1;
        y3 += x1;
        let mut x3 = t0 + t0;
        t0 = x3 + t0;
        let mut t2 = b3 * z1;
        let mut z3 = t1 + t2;
        t1 -= t2;
        y3 = b3 * y3;
        x3 = t4 * y3;
        t2 = t3 * t1;
        x3 = t2 - x3;
        y3 *= t0;
        t1 *= z3;
        y3 = t1 + y3;
        t0 *= t3;
        z3 *= t4;
        z3 += t0;

        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point; alias of [`Self::add_mixed`].
    pub fn add_affine(&self, rhs: &G1Affine) -> Self {
        self.add_mixed(rhs)
    }

    /// Point doubling (Renes–Costello–Batina 2016, Algorithm 9 with `a = 0`).
    pub fn double(&self) -> Self {
        let b3 = b3();
        let (x, y, z) = (self.x, self.y, self.z);

        let mut t0 = y * y;
        let mut z3 = t0 + t0;
        z3 = z3 + z3;
        z3 = z3 + z3;
        let mut t1 = y * z;
        let mut t2 = z * z;
        t2 = b3 * t2;
        let mut x3 = t2 * z3;
        let mut y3 = t0 + t2;
        z3 = t1 * z3;
        t1 = t2 + t2;
        t2 = t1 + t2;
        t0 -= t2;
        y3 = t0 * y3;
        y3 = x3 + y3;
        t1 = x * y;
        x3 = t0 * t1;
        x3 = x3 + x3;

        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Negates the point.
    pub fn neg(&self) -> Self {
        Self {
            x: self.x,
            y: -self.y,
            z: self.z,
        }
    }

    /// Scalar multiplication by a field element using double-and-add over the
    /// canonical bits of the scalar (MSB first).
    pub fn mul_scalar(&self, scalar: &Fr) -> Self {
        let limbs = scalar.to_canonical_limbs();
        let mut acc = Self::identity();
        let mut started = false;
        for i in (0..Fr::NUM_BITS as usize).rev() {
            if started {
                acc = acc.double();
            }
            if (limbs[i / 64] >> (i % 64)) & 1 == 1 {
                acc = acc.add(self);
                started = true;
            }
        }
        acc
    }

    /// Samples a uniformly random group element (a random scalar multiple of
    /// the generator).
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::generator().mul_scalar(&Fr::random(rng))
    }

    /// Converts a batch of projective points to affine with a single shared
    /// inversion (Montgomery batch inversion over the Z coordinates).
    pub fn batch_to_affine(points: &[Self]) -> Vec<G1Affine> {
        let mut zs: Vec<Fq> = Vec::with_capacity(points.len());
        for p in points {
            zs.push(if p.is_identity() { Fq::one() } else { p.z });
        }
        zkspeed_field::batch_invert(&mut zs);
        points
            .iter()
            .zip(zs.iter())
            .map(|(p, zinv)| {
                if p.is_identity() {
                    G1Affine::identity()
                } else {
                    G1Affine {
                        x: p.x * *zinv,
                        y: p.y * *zinv,
                        infinity: false,
                    }
                }
            })
            .collect()
    }
}

impl Add for G1Projective {
    type Output = G1Projective;
    fn add(self, rhs: Self) -> Self {
        G1Projective::add(&self, &rhs)
    }
}

impl<'a> Add<&'a G1Projective> for G1Projective {
    type Output = G1Projective;
    fn add(self, rhs: &'a Self) -> Self {
        G1Projective::add(&self, rhs)
    }
}

impl AddAssign for G1Projective {
    fn add_assign(&mut self, rhs: Self) {
        *self = G1Projective::add(self, &rhs);
    }
}

impl Sub for G1Projective {
    type Output = G1Projective;
    fn sub(self, rhs: Self) -> Self {
        G1Projective::add(&self, &rhs.neg())
    }
}

impl SubAssign for G1Projective {
    fn sub_assign(&mut self, rhs: Self) {
        *self = G1Projective::add(self, &rhs.neg());
    }
}

impl Neg for G1Projective {
    type Output = G1Projective;
    fn neg(self) -> Self {
        G1Projective::neg(&self)
    }
}

impl Mul<Fr> for G1Projective {
    type Output = G1Projective;
    fn mul(self, rhs: Fr) -> Self {
        self.mul_scalar(&rhs)
    }
}

impl<'a> Mul<&'a Fr> for G1Projective {
    type Output = G1Projective;
    fn mul(self, rhs: &'a Fr) -> Self {
        self.mul_scalar(rhs)
    }
}

impl Sum for G1Projective {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::identity(), |acc, p| acc + p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkspeed_rt::rngs::StdRng;
    use zkspeed_rt::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed_0003)
    }

    #[test]
    fn generator_is_on_curve() {
        let g = G1Affine::generator();
        assert!(g.is_on_curve());
        assert!(!g.is_identity());
        assert!(G1Projective::generator().is_on_curve());
        assert!(G1Affine::identity().is_on_curve());
        assert!(G1Projective::identity().is_on_curve());
    }

    #[test]
    fn identity_laws() {
        let g = G1Projective::generator();
        let id = G1Projective::identity();
        assert_eq!(g + id, g);
        assert_eq!(id + g, g);
        assert_eq!(id + id, id);
        assert_eq!(g - g, id);
        assert_eq!(g + g.neg(), id);
    }

    #[test]
    fn doubling_matches_addition() {
        let g = G1Projective::generator();
        assert_eq!(g.double(), g + g);
        let g4 = g.double().double();
        assert_eq!(g4, g + g + g + g);
        assert!(g.double().is_on_curve());
        assert_eq!(G1Projective::identity().double(), G1Projective::identity());
    }

    #[test]
    fn mixed_addition_matches_full_addition() {
        let mut r = rng();
        for _ in 0..5 {
            let p = G1Projective::random(&mut r);
            let q = G1Projective::random(&mut r);
            let q_affine = q.to_affine();
            assert_eq!(p.add_mixed(&q_affine), p + q);
            assert_eq!(p.add_affine(&q_affine), p + q);
            // Doubling input (P + P) stays complete.
            assert_eq!(p.add_mixed(&p.to_affine()), p.double());
            // Inverse input (P + (−P)) yields the identity.
            assert!(p.add_mixed(&p.neg().to_affine()).is_identity());
        }
        // Identity on either side.
        let g = G1Projective::generator();
        assert_eq!(g.add_mixed(&G1Affine::identity()), g);
        assert_eq!(
            G1Projective::identity().add_mixed(&G1Affine::generator()),
            g
        );
    }

    #[test]
    fn addition_is_commutative_and_associative() {
        let mut r = rng();
        let a = G1Projective::random(&mut r);
        let b = G1Projective::random(&mut r);
        let c = G1Projective::random(&mut r);
        assert_eq!(a + b, b + a);
        assert_eq!((a + b) + c, a + (b + c));
        assert!((a + b).is_on_curve());
    }

    #[test]
    fn scalar_multiplication_small_cases() {
        let g = G1Projective::generator();
        assert_eq!(g.mul_scalar(&Fr::zero()), G1Projective::identity());
        assert_eq!(g.mul_scalar(&Fr::one()), g);
        assert_eq!(g.mul_scalar(&Fr::from_u64(2)), g.double());
        assert_eq!(g.mul_scalar(&Fr::from_u64(5)), g + g + g + g + g);
    }

    #[test]
    fn scalar_multiplication_distributes() {
        let mut r = rng();
        let g = G1Projective::generator();
        let a = Fr::random(&mut r);
        let b = Fr::random(&mut r);
        assert_eq!(g.mul_scalar(&(a + b)), g.mul_scalar(&a) + g.mul_scalar(&b));
        assert_eq!(g.mul_scalar(&(a * b)), g.mul_scalar(&a).mul_scalar(&b));
    }

    #[test]
    fn subgroup_order_annihilates_generator() {
        // r · G = identity: multiply by (r - 1) and add G once more.
        let minus_one = -Fr::one();
        let g = G1Projective::generator();
        assert_eq!(g.mul_scalar(&minus_one) + g, G1Projective::identity());
    }

    #[test]
    fn affine_projective_roundtrip() {
        let mut r = rng();
        for _ in 0..5 {
            let p = G1Projective::random(&mut r);
            let a = p.to_affine();
            assert!(a.is_on_curve());
            assert_eq!(a.to_projective(), p);
        }
        assert!(G1Projective::identity().to_affine().is_identity());
    }

    #[test]
    fn batch_to_affine_matches_individual() {
        let mut r = rng();
        let mut points: Vec<G1Projective> = (0..9).map(|_| G1Projective::random(&mut r)).collect();
        points.push(G1Projective::identity());
        let batch = G1Projective::batch_to_affine(&points);
        for (p, a) in points.iter().zip(batch.iter()) {
            assert_eq!(p.to_affine(), *a);
        }
    }

    #[test]
    fn affine_negation() {
        let g = G1Affine::generator();
        let neg = -g;
        assert!(neg.is_on_curve());
        assert_eq!(
            g.to_projective() + neg.to_projective(),
            G1Projective::identity()
        );
        assert_eq!(-G1Affine::identity(), G1Affine::identity());
    }

    #[test]
    fn canonical_encoding_roundtrips_and_validates() {
        let mut r = rng();
        let mut points: Vec<G1Affine> = (0..4)
            .map(|_| G1Projective::random(&mut r).to_affine())
            .collect();
        points.push(G1Affine::identity());
        for p in &points {
            let mut bytes = Vec::new();
            p.write_canonical(&mut bytes);
            assert_eq!(bytes.len(), G1_ENCODED_BYTES);
            let mut reader = Reader::new(&bytes);
            let back = G1Affine::read_canonical(&mut reader).expect("valid point");
            assert_eq!(back, *p);
            assert_eq!(reader.remaining(), 0);
        }
        // Off-curve data is rejected.
        let mut bytes = Vec::new();
        G1Affine::generator().write_canonical(&mut bytes);
        bytes[0] ^= 1;
        assert!(matches!(
            G1Affine::read_canonical(&mut Reader::new(&bytes)),
            Err(DecodeError::InvalidValue { .. })
        ));
        // A non-canonical identity (flag set, nonzero coordinates) is rejected.
        let mut bytes = Vec::new();
        G1Affine::generator().write_canonical(&mut bytes);
        bytes[96] = 1;
        assert!(matches!(
            G1Affine::read_canonical(&mut Reader::new(&bytes)),
            Err(DecodeError::InvalidValue { .. })
        ));
        // A bad flag byte is rejected.
        let mut bytes = vec![0u8; 96];
        bytes.push(7);
        assert!(matches!(
            G1Affine::read_canonical(&mut Reader::new(&bytes)),
            Err(DecodeError::InvalidValue { .. })
        ));
        // Truncated input is rejected.
        assert!(matches!(
            G1Affine::read_canonical(&mut Reader::new(&[0u8; 10])),
            Err(DecodeError::UnexpectedEnd { .. })
        ));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", G1Affine::identity()), "G1(infinity)");
        assert!(format!("{}", G1Affine::generator()).starts_with("G1(x=0x"));
    }
}
