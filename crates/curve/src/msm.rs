//! Multi-scalar multiplication (MSM) kernels.
//!
//! MSMs — dot products `Σ sᵢ·Pᵢ` between scalar vectors and G1 point vectors
//! — implement the polynomial commitments of HyperPlonk and are the largest
//! compute consumer in the protocol (Table 1 of the zkSpeed paper). This
//! module provides:
//!
//! * [`naive_msm`] — the double-and-add reference used as a test oracle;
//! * [`msm`] / [`msm_with_config`] — Pippenger's bucket algorithm with three
//!   composable optimizations selected by [`MsmConfig`]:
//!   - **signed-digit window recoding** (digits in `[−2^{w−1}, 2^{w−1}]`,
//!     using the free affine negation `−(x, y) = (x, −y)`), halving the
//!     bucket count and the aggregation adds per window;
//!   - **SZKP-style intra-window parallelism** ([`MsmSchedule::IntraWindow`])
//!     — the point array is split into chunks, each chunk fills a private
//!     bucket set per window, and partial buckets are tree-combined before
//!     aggregation, so parallel work scales with `windows × chunks` instead
//!     of windows alone;
//!   - **batch-affine bucket accumulation** — buckets accumulate through
//!     affine additions whose inversions are amortized by
//!     [`zkspeed_field::batch_invert`], cutting the per-add Fq
//!     multiplications from 13 (mixed) to ~6;
//! * a choice of bucket-aggregation schedule (the serial SZKP schedule or
//!   zkSpeed's grouped schedule, Fig. 5);
//! * [`sparse_msm`] — the Sparse MSM used for Witness Commits, where scalars
//!   that are 0 or 1 bypass Pippenger entirely (Section 3.3.1);
//! * operation counters ([`MsmStats`]) that feed the hardware cost model.
//!
//! Every schedule computes the same group element, and proof encodings
//! normalize points to affine, so proofs are bit-identical across schedules
//! and backends. Work splitting is derived from the *configuration* (never
//! from the backend's thread count), so results and operation counters are
//! also identical at any thread count.

use std::ops::Range;
use std::sync::Arc;

use zkspeed_field::{batch_invert, Fq, Fr};
use zkspeed_rt::pool::{self, Backend};

use crate::g1::{G1Affine, G1Projective};
use crate::multi_base::MultiBaseTable;

/// How bucket sums are aggregated into the per-window total `Σ i·Bᵢ`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Aggregation {
    /// The serial running-sum schedule used by SZKP: one long dependency
    /// chain of `2·(2^w − 1)` point additions that cannot exploit a
    /// pipelined adder.
    Serial,
    /// zkSpeed's grouped schedule (adapted from PriorMSM): buckets are split
    /// into groups of `group_size`, partial sums are computed per group (in
    /// parallel in hardware), and the group results are combined at the end.
    Grouped {
        /// Number of buckets per group (the paper selects 16).
        group_size: usize,
    },
}

impl Default for Aggregation {
    fn default() -> Self {
        Aggregation::Grouped { group_size: 16 }
    }
}

/// How the bucket-fill work of one MSM is decomposed into units of parallel
/// work.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MsmSchedule {
    /// One unit of work per window: each worker owns a whole window's bucket
    /// set. Parallelism is capped at `⌈255/w⌉` windows — the schedule PR 2
    /// shipped.
    WindowParallel,
    /// SZKP-style scaling: the point array is additionally split into
    /// `chunks` contiguous slices. Each `(window, chunk)` pair fills a
    /// private bucket set, and the per-chunk partial buckets are
    /// tree-combined before aggregation, so parallelism scales with
    /// `windows × chunks`.
    ///
    /// `chunks == 0` selects an automatic count from the problem size
    /// (never from the backend's thread count, keeping results and
    /// counters thread-count invariant).
    IntraWindow {
        /// Number of point chunks per window (0 = auto).
        chunks: usize,
    },
    /// Consume a precomputed [`MultiBaseTable`] over the fixed bases: the
    /// shifted multiples `2^{w·j}·Bᵢ` turn the whole MSM into one flat
    /// signed-digit bucket problem — zero doublings, `⌈255/w⌉ + 1` digit
    /// lookups per scalar, and a single aggregation pass. Work is
    /// decomposed by partitioning the *bucket index space* into
    /// config-derived ranges (each job scans every digit but fills only
    /// its disjoint bucket slice), so no combine additions are needed and
    /// results stay thread-count invariant.
    ///
    /// Only table-aware entry points ([`msm_precomputed_on`],
    /// [`sparse_msm_precomputed_on`]) can honor this schedule; the plain
    /// `msm_with_config*` functions have no table and fall back to the
    /// auto [`MsmSchedule::IntraWindow`] decomposition, still computing
    /// the same group element.
    Precomputed,
}

impl Default for MsmSchedule {
    fn default() -> Self {
        MsmSchedule::IntraWindow { chunks: 0 }
    }
}

/// Configuration for a Pippenger MSM run.
///
/// [`MsmConfig::default`] is [`MsmConfig::optimized`] — signed digits,
/// intra-window chunking and batch-affine accumulation all on.
/// [`MsmConfig::classic`] reproduces the PR 2 schedule (unsigned windows,
/// window-level parallelism only, mixed additions into projective buckets).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MsmConfig {
    /// Window (bucket index) size in bits (0 = auto from the problem size).
    pub window_bits: usize,
    /// Bucket aggregation schedule.
    pub aggregation: Aggregation,
    /// How bucket filling is decomposed into parallel work units.
    pub schedule: MsmSchedule,
    /// Recode scalars into signed digits in `[−2^{w−1}, 2^{w−1}]`, halving
    /// the bucket count (negative digits add the negated point — free in
    /// affine coordinates).
    pub signed_digits: bool,
    /// Minimum points in a `(window, chunk)` segment for the batch-affine
    /// accumulation path; smaller segments use mixed additions into
    /// projective buckets. `usize::MAX` disables batch-affine entirely.
    pub batch_affine_min_points: usize,
}

/// Default [`MsmConfig::batch_affine_min_points`]: below this many points a
/// segment's batch-inversion rounds cost more than they amortize.
pub const BATCH_AFFINE_DEFAULT_MIN_POINTS: usize = 32;

impl MsmConfig {
    /// The PR 2 schedule: unsigned windows, window-level parallelism only,
    /// mixed additions into projective buckets. Kept as the baseline the
    /// bench suite compares against and as the apples-to-apples counterpart
    /// of the hardware model's Pippenger unit.
    pub fn classic() -> Self {
        Self {
            window_bits: 0,
            aggregation: Aggregation::default(),
            schedule: MsmSchedule::WindowParallel,
            signed_digits: false,
            batch_affine_min_points: usize::MAX,
        }
    }

    /// All three optimizations on: signed digits, auto intra-window
    /// chunking, batch-affine bucket accumulation.
    pub fn optimized() -> Self {
        Self {
            window_bits: 0,
            aggregation: Aggregation::default(),
            schedule: MsmSchedule::IntraWindow { chunks: 0 },
            signed_digits: true,
            batch_affine_min_points: BATCH_AFFINE_DEFAULT_MIN_POINTS,
        }
    }

    /// The precomputed-table schedule: signed digits into a single flat
    /// bucket set fed from a [`MultiBaseTable`]'s shifted bases — zero
    /// doublings per MSM. `window_bits` is ignored by the table engine
    /// (the table's own width wins); callers without a table fall back to
    /// [`MsmConfig::optimized`]'s decomposition.
    pub fn precomputed() -> Self {
        Self {
            schedule: MsmSchedule::Precomputed,
            ..Self::optimized()
        }
    }

    /// Returns the config with an explicit window size.
    pub fn with_window_bits(mut self, window_bits: usize) -> Self {
        self.window_bits = window_bits;
        self
    }

    /// Returns the config with signed-digit recoding switched on or off.
    pub fn with_signed_digits(mut self, signed: bool) -> Self {
        self.signed_digits = signed;
        self
    }

    /// Returns the config with the given work-decomposition schedule.
    pub fn with_schedule(mut self, schedule: MsmSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Returns the config with the given batch-affine threshold
    /// (`usize::MAX` disables batch-affine accumulation).
    pub fn with_batch_affine_min_points(mut self, min_points: usize) -> Self {
        self.batch_affine_min_points = min_points;
        self
    }
}

impl Default for MsmConfig {
    fn default() -> Self {
        Self::optimized()
    }
}

/// Operation counts of an MSM execution, used by the zkSpeed hardware model
/// to translate functional work into PADD-unit cycles and modmuls.
///
/// Additions are counted by kind so the cost model can charge each at its
/// true Fq-multiplication price: mixed additions
/// ([`crate::g1::PADD_MIXED_FQ_MULS`]) while filling buckets, batch-affine
/// additions ([`crate::g1::BATCH_AFFINE_ADD_FQ_MULS`]), and full projective
/// additions ([`crate::g1::PADD_FQ_MULS`]) everywhere two projective points
/// meet (aggregation, partial-bucket combines, window combines).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MsmStats {
    /// Mixed (projective + affine) additions performed while filling
    /// projective buckets.
    pub bucket_adds: u64,
    /// Batch-affine additions performed while filling buckets on the
    /// amortized-inversion path.
    pub affine_adds: u64,
    /// Shared batch-inversion rounds amortized over the affine additions
    /// (each is one BEEA inversion — shift/subtract-based, no multiplier
    /// use — plus the per-element muls already folded into
    /// [`crate::g1::BATCH_AFFINE_ADD_FQ_MULS`]).
    pub batch_inversions: u64,
    /// Full projective additions performed during bucket aggregation.
    pub aggregation_adds: u64,
    /// Full projective additions tree-combining per-chunk partial buckets
    /// (intra-window schedule only).
    pub partial_combine_adds: u64,
    /// Full projective additions performed while combining windows /
    /// tree-summing.
    pub combine_adds: u64,
    /// Point doublings performed while combining windows.
    pub doublings: u64,
    /// Scalars recoded into signed window digits.
    pub recoded_scalars: u64,
}

impl MsmStats {
    /// Total point additions of any kind (excluding doublings).
    pub fn total_adds(&self) -> u64 {
        self.bucket_adds
            + self.affine_adds
            + self.aggregation_adds
            + self.partial_combine_adds
            + self.combine_adds
    }

    /// Total Fq modular multiplications implied by the counted operations,
    /// charging each addition kind at its own price. BEEA inversions and
    /// scalar recoding use no Fq multipliers and contribute nothing here.
    pub fn fq_muls(&self) -> u64 {
        self.bucket_adds * crate::g1::PADD_MIXED_FQ_MULS as u64
            + self.affine_adds * crate::g1::BATCH_AFFINE_ADD_FQ_MULS as u64
            + (self.aggregation_adds + self.partial_combine_adds + self.combine_adds)
                * crate::g1::PADD_FQ_MULS as u64
            + self.doublings * crate::g1::PDBL_FQ_MULS as u64
    }

    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: &MsmStats) {
        self.bucket_adds += other.bucket_adds;
        self.affine_adds += other.affine_adds;
        self.batch_inversions += other.batch_inversions;
        self.aggregation_adds += other.aggregation_adds;
        self.partial_combine_adds += other.partial_combine_adds;
        self.combine_adds += other.combine_adds;
        self.doublings += other.doublings;
        self.recoded_scalars += other.recoded_scalars;
    }
}

/// Statistics of a sparse MSM split (Witness Commit step).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SparseMsmStats {
    /// Number of zero scalars (skipped entirely).
    pub zeros: usize,
    /// Number of one scalars (handled by the tree adder).
    pub ones: usize,
    /// Number of dense (full-width) scalars handled by Pippenger.
    pub dense: usize,
    /// Operation counts of the overall computation.
    pub ops: MsmStats,
}

/// Reference MSM: independent double-and-add per term. `O(n·255)` point
/// operations; used only as a correctness oracle in tests and for tiny MSMs.
pub fn naive_msm(points: &[G1Affine], scalars: &[Fr]) -> G1Projective {
    assert_eq!(points.len(), scalars.len(), "length mismatch");
    let mut acc = G1Projective::identity();
    for (p, s) in points.iter().zip(scalars.iter()) {
        acc += p.to_projective().mul_scalar(s);
    }
    acc
}

/// Selects a window size from the problem size, mirroring the usual
/// `log₂(n)`-driven heuristic (clamped to the 7–10 bit range the zkSpeed DSE
/// explores for its MSM unit, Table 2).
pub fn auto_window_bits(n: usize) -> usize {
    if n < 32 {
        3
    } else {
        let log = usize::BITS as usize - n.leading_zeros() as usize; // ~ceil(log2)
        (log.saturating_sub(3)).clamp(7, 10).min(16)
    }
}

/// Selects the intra-window chunk count from the problem size (never from
/// the thread count, so results and counters are backend-invariant). Chunks
/// of ≥ 2048 points keep per-segment overhead negligible while exposing
/// `windows × chunks` units of parallel work.
pub fn auto_intra_window_chunks(n: usize) -> usize {
    (n / 2048).clamp(1, 16)
}

/// Computes `Σ sᵢ·Pᵢ` with Pippenger's algorithm using default configuration.
///
/// # Panics
///
/// Panics if `points` and `scalars` have different lengths.
///
/// # Examples
///
/// ```
/// use zkspeed_curve::{msm, G1Affine, G1Projective};
/// use zkspeed_field::Fr;
///
/// let g = G1Projective::generator();
/// let points = vec![g.to_affine(), g.double().to_affine()];
/// let scalars = vec![Fr::from_u64(3), Fr::from_u64(5)];
/// // 3·G + 5·(2G) = 13·G
/// assert_eq!(msm(&points, &scalars), g.mul_scalar(&Fr::from_u64(13)));
/// ```
pub fn msm(points: &[G1Affine], scalars: &[Fr]) -> G1Projective {
    msm_with_config(points, scalars, MsmConfig::default()).0
}

/// Computes `Σ sᵢ·Pᵢ` with Pippenger's algorithm and an explicit
/// configuration, returning the result together with operation counts.
///
/// Parallel fan-out follows the ambient configuration (`ZKSPEED_THREADS`,
/// [`zkspeed_rt::par::with_threads`]); use [`msm_with_config_on`] to pin an
/// explicit [`Backend`].
///
/// # Panics
///
/// Panics if the slices have different lengths or if a grouped aggregation
/// with `group_size == 0` is requested.
pub fn msm_with_config(
    points: &[G1Affine],
    scalars: &[Fr],
    config: MsmConfig,
) -> (G1Projective, MsmStats) {
    msm_with_config_on(&pool::Ambient, points, scalars, config)
}

/// [`msm_with_config`] on an explicit execution backend.
///
/// # Panics
///
/// Panics if the slices have different lengths or if a grouped aggregation
/// with `group_size == 0` is requested.
pub fn msm_with_config_on(
    backend: &dyn Backend,
    points: &[G1Affine],
    scalars: &[Fr],
    config: MsmConfig,
) -> (G1Projective, MsmStats) {
    msm_impl(backend, PointSource::Borrowed(points), scalars, config)
}

/// [`msm_with_config`] over a shared point vector: when the backend goes
/// parallel the `Arc` is cloned into the worker jobs instead of copying the
/// points, so SRS-basis commitments fan out with zero point copies.
///
/// # Panics
///
/// Panics if the lengths mismatch or if a grouped aggregation with
/// `group_size == 0` is requested.
pub fn msm_with_config_shared(
    backend: &dyn Backend,
    points: &Arc<Vec<G1Affine>>,
    scalars: &[Fr],
    config: MsmConfig,
) -> (G1Projective, MsmStats) {
    msm_impl(backend, PointSource::Shared(points), scalars, config)
}

/// How an MSM receives its point vector: borrowed (copied into an `Arc` only
/// if the run actually fans out) or already shared.
enum PointSource<'a> {
    Borrowed(&'a [G1Affine]),
    Shared(&'a Arc<Vec<G1Affine>>),
}

impl PointSource<'_> {
    fn as_slice(&self) -> &[G1Affine] {
        match self {
            PointSource::Borrowed(p) => p,
            PointSource::Shared(a) => a.as_slice(),
        }
    }

    fn to_shared(&self) -> Arc<Vec<G1Affine>> {
        match self {
            // One pass of memcpy (~10 ns/point) against hundreds of point
            // additions per point of MSM work; hot callers that own an Arc
            // (SRS-basis commits) take the Shared arm and copy nothing.
            PointSource::Borrowed(p) => Arc::new(p.to_vec()),
            PointSource::Shared(a) => Arc::clone(a),
        }
    }
}

// ------------------------------------------------------------- recoding ----

/// Per-scalar carry bits of the signed-digit recoding, one bit per window
/// (≤ 256 windows even at `w = 1`). Window `i`'s digit is
/// `c = bits[i·w .. i·w+w] + carry(i)`, mapped to `c − 2^w` (and a carry
/// into window `i+1`) whenever `c > 2^{w−1}`, so digits lie in
/// `[−2^{w−1}, 2^{w−1}]` and the bucket count halves. One extra top window
/// absorbs the final carry (scalars are < 2^255 but their signed form can
/// need 256 bits).
type CarryMask = [u64; 4];

fn recode_carries(limbs: &[u64; 4], w: usize, num_windows: usize) -> CarryMask {
    debug_assert!(num_windows <= 256);
    let half = 1u64 << (w - 1);
    let mut carry = 0u64;
    let mut mask = [0u64; 4];
    for i in 0..num_windows {
        if carry == 1 {
            mask[i / 64] |= 1 << (i % 64);
        }
        let c = extract_window(limbs, i * w, w) as u64 + carry;
        carry = u64::from(c > half);
    }
    debug_assert_eq!(carry, 0, "signed-digit carry escaped the top window");
    mask
}

/// The signed digit of `window` for a recoded scalar, in
/// `[−2^{w−1}, 2^{w−1}]`.
fn signed_window_digit(limbs: &[u64; 4], carries: &CarryMask, window: usize, w: usize) -> i64 {
    let carry = (carries[window / 64] >> (window % 64)) & 1;
    let c = extract_window(limbs, window * w, w) as i64 + carry as i64;
    if c > (1i64 << (w - 1)) {
        c - (1i64 << w)
    } else {
        c
    }
}

// ---------------------------------------------------------- bucket fill ----

/// Immutable inputs of one MSM run, shared by every fill/reduce job.
struct MsmInstance {
    points: Arc<Vec<G1Affine>>,
    scalar_limbs: Arc<Vec<[u64; 4]>>,
    /// Signed-digit carry masks; `None` runs unsigned windows.
    carries: Option<Arc<Vec<CarryMask>>>,
    w: usize,
    num_buckets: usize,
    config: MsmConfig,
    /// Contiguous point ranges, one per intra-window chunk.
    chunk_ranges: Vec<Range<usize>>,
}

/// One `(window, chunk)` segment's private bucket set plus its counters.
struct FilledSegment {
    buckets: Vec<G1Projective>,
    nonempty: bool,
    bucket_adds: u64,
    affine_adds: u64,
    batch_inversions: u64,
}

/// One window's final sum plus its counters.
struct WindowSum {
    sum: G1Projective,
    bucket_adds: u64,
    affine_adds: u64,
    batch_inversions: u64,
    partial_combine_adds: u64,
    aggregation_adds: u64,
}

impl MsmInstance {
    /// The (bucket index, sign-adjusted point) of term `i` in `window`, or
    /// `None` for zero digits and identity points.
    fn bucket_entry(&self, i: usize, window: usize) -> Option<(usize, G1Affine)> {
        let point = self.points[i];
        if point.infinity {
            return None;
        }
        let limbs = &self.scalar_limbs[i];
        match &self.carries {
            Some(carries) => {
                let d = signed_window_digit(limbs, &carries[i], window, self.w);
                match d.cmp(&0) {
                    core::cmp::Ordering::Equal => None,
                    core::cmp::Ordering::Greater => Some((d as usize - 1, point)),
                    core::cmp::Ordering::Less => Some(((-d) as usize - 1, point.neg())),
                }
            }
            None => {
                let idx = extract_window(limbs, window * self.w, self.w);
                (idx != 0).then(|| (idx - 1, point))
            }
        }
    }

    /// Fills one `(window, chunk)` segment's private bucket set.
    fn fill_segment(&self, window: usize, chunk: usize) -> FilledSegment {
        let range = self.chunk_ranges[chunk].clone();
        let batch_affine = range.len() >= self.config.batch_affine_min_points;
        if batch_affine {
            let mut entries: Vec<(u32, G1Affine)> = Vec::with_capacity(range.len());
            for i in range {
                if let Some((bucket, point)) = self.bucket_entry(i, window) {
                    entries.push((bucket as u32, point));
                }
            }
            let nonempty = !entries.is_empty();
            let (buckets, affine_adds, batch_inversions) =
                batch_affine_bucket_sums(self.num_buckets, entries);
            FilledSegment {
                buckets,
                nonempty,
                bucket_adds: 0,
                affine_adds,
                batch_inversions,
            }
        } else {
            let mut buckets = vec![G1Projective::identity(); self.num_buckets];
            let mut bucket_adds = 0u64;
            let mut nonempty = false;
            for i in range {
                if let Some((bucket, point)) = self.bucket_entry(i, window) {
                    nonempty = true;
                    let slot = &mut buckets[bucket];
                    if slot.is_identity() {
                        // First touch costs nothing: the bucket simply
                        // becomes the point.
                        *slot = point.to_projective();
                    } else {
                        *slot = slot.add_mixed(&point);
                        bucket_adds += 1;
                    }
                }
            }
            FilledSegment {
                buckets,
                nonempty,
                bucket_adds,
                affine_adds: 0,
                batch_inversions: 0,
            }
        }
    }

    /// Tree-combines one window's per-chunk partial buckets and aggregates
    /// them into the window sum.
    fn reduce_window(&self, segments: &[FilledSegment]) -> WindowSum {
        let mut out = WindowSum {
            sum: G1Projective::identity(),
            bucket_adds: 0,
            affine_adds: 0,
            batch_inversions: 0,
            partial_combine_adds: 0,
            aggregation_adds: 0,
        };
        let mut nonempty = false;
        for seg in segments {
            out.bucket_adds += seg.bucket_adds;
            out.affine_adds += seg.affine_adds;
            out.batch_inversions += seg.batch_inversions;
            nonempty |= seg.nonempty;
        }
        if !nonempty {
            // Every digit of this window was zero: skip the aggregation
            // chain entirely (the always-zero top window of the signed
            // recoding takes this path on typical inputs).
            return out;
        }
        let (sum, agg_adds) = if segments.len() == 1 {
            // Single segment (the fused path): aggregate its buckets in
            // place, no combine and no copy.
            aggregate_buckets(&segments[0].buckets, self.config.aggregation)
        } else {
            let (buckets, combine_adds) = tree_combine_buckets(segments);
            out.partial_combine_adds = combine_adds;
            aggregate_buckets(&buckets, self.config.aggregation)
        };
        out.sum = sum;
        out.aggregation_adds = agg_adds;
        out
    }
}

/// Tree-combines per-chunk partial bucket sets bucket-wise, skipping
/// identity operands; returns the combined buckets and the additions used.
fn tree_combine_buckets(segments: &[FilledSegment]) -> (Vec<G1Projective>, u64) {
    debug_assert!(segments.len() > 1);
    let mut adds = 0u64;
    let combine = |a: &[G1Projective], b: &[G1Projective], adds: &mut u64| -> Vec<G1Projective> {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| {
                if x.is_identity() {
                    *y
                } else if y.is_identity() {
                    *x
                } else {
                    *adds += 1;
                    *x + *y
                }
            })
            .collect()
    };
    // First level reads the borrowed segments; later levels fold owned vecs.
    let mut layer: Vec<Vec<G1Projective>> = segments
        .chunks(2)
        .map(|pair| {
            if pair.len() == 2 {
                combine(&pair[0].buckets, &pair[1].buckets, &mut adds)
            } else {
                pair[0].buckets.clone()
            }
        })
        .collect();
    while layer.len() > 1 {
        layer = layer
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    combine(&pair[0], &pair[1], &mut adds)
                } else {
                    pair[0].clone()
                }
            })
            .collect();
    }
    (layer.pop().expect("nonempty layer"), adds)
}

/// Reduces a multiset of `(bucket, affine point)` entries to one affine
/// point per bucket using batched affine additions: each round pairs up the
/// pending entries of every bucket, computes all the pair sums with a single
/// shared [`batch_invert`], and repeats until every bucket holds at most one
/// point. Returns the buckets (lifted to projective for aggregation), the
/// affine additions performed, and the batch-inversion rounds used.
fn batch_affine_bucket_sums(
    num_buckets: usize,
    entries: Vec<(u32, G1Affine)>,
) -> (Vec<G1Projective>, u64, u64) {
    /// A pair scheduled for one batched affine addition.
    struct AddJob {
        /// Index into the next round's entry list where the result lands.
        slot: usize,
        a: G1Affine,
        b: G1Affine,
        /// True for the doubling form (`a == b`): λ = 3x²/2y instead of
        /// Δy/Δx.
        double: bool,
    }

    // Stable counting sort by bucket so each bucket's entries are
    // contiguous (and in input order, keeping rounds deterministic).
    let mut counts = vec![0u32; num_buckets + 1];
    for (bucket, _) in &entries {
        counts[*bucket as usize + 1] += 1;
    }
    for b in 0..num_buckets {
        counts[b + 1] += counts[b];
    }
    let mut cursor = counts.clone();
    let mut sorted = vec![(0u32, G1Affine::identity()); entries.len()];
    for entry in entries {
        let pos = &mut cursor[entry.0 as usize];
        sorted[*pos as usize] = entry;
        *pos += 1;
    }

    let mut affine_adds = 0u64;
    let mut inversions = 0u64;
    loop {
        let mut next: Vec<(u32, G1Affine)> = Vec::with_capacity(sorted.len().div_ceil(2));
        let mut jobs: Vec<AddJob> = Vec::new();
        let mut any_pair = false;
        let mut i = 0;
        while i < sorted.len() {
            let bucket = sorted[i].0;
            let mut run_end = i + 1;
            while run_end < sorted.len() && sorted[run_end].0 == bucket {
                run_end += 1;
            }
            while i + 1 < run_end {
                let (a, b) = (sorted[i].1, sorted[i + 1].1);
                i += 2;
                any_pair = true;
                if a.infinity {
                    next.push((bucket, b));
                } else if b.infinity {
                    next.push((bucket, a));
                } else if a.x == b.x {
                    if a.y == b.y {
                        jobs.push(AddJob {
                            slot: next.len(),
                            a,
                            b,
                            double: true,
                        });
                        next.push((bucket, G1Affine::identity()));
                    } else {
                        // a = −b: the pair cancels to the identity.
                        next.push((bucket, G1Affine::identity()));
                    }
                } else {
                    jobs.push(AddJob {
                        slot: next.len(),
                        a,
                        b,
                        double: false,
                    });
                    next.push((bucket, G1Affine::identity()));
                }
            }
            if i < run_end {
                next.push(sorted[i]);
                i += 1;
            }
        }
        if !jobs.is_empty() {
            inversions += 1;
            // One shared inversion amortized over every pair of the round.
            // Denominators are never zero: Δx ≠ 0 by classification and
            // 2y ≠ 0 because the prime-order subgroup has no 2-torsion.
            let mut denoms: Vec<Fq> = jobs
                .iter()
                .map(|j| {
                    if j.double {
                        j.a.y + j.a.y
                    } else {
                        j.b.x - j.a.x
                    }
                })
                .collect();
            batch_invert(&mut denoms);
            for (job, inv) in jobs.iter().zip(denoms.iter()) {
                let lambda = if job.double {
                    let x2 = job.a.x.square();
                    (x2 + x2 + x2) * *inv
                } else {
                    (job.b.y - job.a.y) * *inv
                };
                let x3 = lambda.square() - job.a.x - job.b.x;
                let y3 = lambda * (job.a.x - x3) - job.a.y;
                next[job.slot].1 = G1Affine {
                    x: x3,
                    y: y3,
                    infinity: false,
                };
                affine_adds += 1;
            }
        }
        sorted = next;
        if !any_pair {
            break;
        }
    }

    let mut buckets = vec![G1Projective::identity(); num_buckets];
    for (bucket, point) in sorted {
        if !point.infinity {
            buckets[bucket as usize] = point.to_projective();
        }
    }
    (buckets, affine_adds, inversions)
}

// ---------------------------------------------------------------- engine ----

fn msm_impl(
    backend: &dyn Backend,
    points: PointSource<'_>,
    scalars: &[Fr],
    config: MsmConfig,
) -> (G1Projective, MsmStats) {
    let point_slice = points.as_slice();
    assert_eq!(point_slice.len(), scalars.len(), "length mismatch");
    let n = point_slice.len();
    let mut stats = MsmStats::default();
    if n == 0 {
        return (G1Projective::identity(), stats);
    }
    let w = if config.window_bits == 0 {
        auto_window_bits(n)
    } else {
        config.window_bits
    };
    assert!((1..=16).contains(&w), "window size out of range");

    let scalar_limbs: Vec<[u64; 4]> = scalars.iter().map(|s| s.to_canonical_limbs()).collect();
    let num_bits = Fr::NUM_BITS as usize;
    // Signed recoding halves the buckets but needs one extra window for the
    // final carry (typically all-zero and skipped by the empty-window check).
    let (num_windows, num_buckets) = if config.signed_digits {
        (num_bits.div_ceil(w) + 1, 1usize << (w - 1))
    } else {
        (num_bits.div_ceil(w), (1usize << w) - 1)
    };
    let carries: Option<Vec<CarryMask>> = config.signed_digits.then(|| {
        stats.recoded_scalars = n as u64;
        scalar_limbs
            .iter()
            .map(|limbs| recode_carries(limbs, w, num_windows))
            .collect()
    });
    let chunks = match config.schedule {
        MsmSchedule::WindowParallel => 1,
        // No table reaches this engine: the precomputed schedule degrades
        // to the auto intra-window decomposition (same group element, just
        // without the zero-doubling shortcut).
        MsmSchedule::IntraWindow { chunks: 0 } | MsmSchedule::Precomputed => {
            auto_intra_window_chunks(n)
        }
        MsmSchedule::IntraWindow { chunks } => chunks.min(n),
    };
    let chunk_ranges = zkspeed_rt::par::split_ranges(n, chunks);
    let num_chunks = chunk_ranges.len();

    let instance = MsmInstance {
        points: points.to_shared(),
        scalar_limbs: Arc::new(scalar_limbs),
        carries: carries.map(Arc::new),
        w,
        num_buckets,
        config,
        chunk_ranges,
    };

    // Every (window, chunk) segment is independent, so segments fan out over
    // the backend's workers; the per-window reduction and the serial window
    // combine below consume them in deterministic order, so results and
    // operation counts are bit-identical to a serial run at any thread
    // count. Workers measure their thread-local modmul delta, rewind it, and
    // hand it back so the profiling counters see the same totals everywhere.
    // MSMs below PAR_MIN_POINTS (the tail of the halving-MSM sequence, tiny
    // commits) stay on the calling thread: fan-out overhead would dwarf the
    // microseconds of useful work per segment.
    const PAR_MIN_POINTS: usize = 256;
    let parallel = n >= PAR_MIN_POINTS && backend.threads() > 1 && num_windows * num_chunks > 1;

    let window_sums: Vec<(WindowSum, zkspeed_field::ModmulCount)> = if num_chunks == 1 {
        // Fused path: one job per window fills and aggregates directly.
        let run = move |instance: &MsmInstance, window: usize| {
            zkspeed_field::measure_modmuls(|| {
                let segment = instance.fill_segment(window, 0);
                instance.reduce_window(&[segment])
            })
        };
        if parallel {
            let instance = Arc::new(instance);
            pool::map_indices_on(backend, num_windows, move |window| run(&instance, window))
        } else {
            (0..num_windows)
                .map(|window| run(&instance, window))
                .collect()
        }
    } else {
        // Two-phase path: fill (windows × chunks jobs), then reduce
        // (one job per window).
        let instance = Arc::new(instance);
        let fill_instance = Arc::clone(&instance);
        let fill = move |job: usize| {
            zkspeed_field::measure_modmuls(|| {
                fill_instance.fill_segment(job / num_chunks, job % num_chunks)
            })
        };
        let segments: Vec<(FilledSegment, zkspeed_field::ModmulCount)> = if parallel {
            pool::map_indices_on(backend, num_windows * num_chunks, fill)
        } else {
            (0..num_windows * num_chunks).map(fill).collect()
        };
        // Fill-phase modmuls are re-added in job order before the reduce
        // phase measures its own deltas.
        let mut window_segments: Vec<Vec<FilledSegment>> = Vec::with_capacity(num_windows);
        let mut current: Vec<FilledSegment> = Vec::with_capacity(num_chunks);
        for (segment, muls) in segments {
            zkspeed_field::add_modmul_count(muls);
            current.push(segment);
            if current.len() == num_chunks {
                window_segments.push(std::mem::replace(
                    &mut current,
                    Vec::with_capacity(num_chunks),
                ));
            }
        }
        let window_segments = Arc::new(window_segments);
        let reduce_instance = Arc::clone(&instance);
        let reduce = move |window: usize| {
            zkspeed_field::measure_modmuls(|| {
                reduce_instance.reduce_window(&window_segments[window])
            })
        };
        if parallel {
            pool::map_indices_on(backend, num_windows, reduce)
        } else {
            (0..num_windows).map(reduce).collect()
        }
    };

    // Serial top-down window combine: w doublings between windows (skipped
    // while the accumulator is still the identity, so the signed recoding's
    // empty top window costs nothing), one addition per non-empty window.
    let mut acc = G1Projective::identity();
    for (window_sum, muls) in window_sums.iter().rev() {
        if !acc.is_identity() {
            for _ in 0..w {
                acc = acc.double();
                stats.doublings += 1;
            }
        }
        zkspeed_field::add_modmul_count(*muls);
        stats.bucket_adds += window_sum.bucket_adds;
        stats.affine_adds += window_sum.affine_adds;
        stats.batch_inversions += window_sum.batch_inversions;
        stats.partial_combine_adds += window_sum.partial_combine_adds;
        stats.aggregation_adds += window_sum.aggregation_adds;
        if !window_sum.sum.is_identity() {
            if acc.is_identity() {
                acc = window_sum.sum;
            } else {
                acc += window_sum.sum;
                stats.combine_adds += 1;
            }
        }
    }
    (acc, stats)
}

// ----------------------------------------------------------- aggregation ----

/// Aggregates bucket sums into `Σ (i+1)·buckets[i]`, returning the total and
/// the number of point additions used. Additions whose operand is the
/// identity are skipped (and not counted).
pub fn aggregate_buckets(buckets: &[G1Projective], schedule: Aggregation) -> (G1Projective, u64) {
    match schedule {
        Aggregation::Serial => aggregate_serial(buckets),
        Aggregation::Grouped { group_size } => aggregate_grouped(buckets, group_size),
    }
}

fn aggregate_serial(buckets: &[G1Projective]) -> (G1Projective, u64) {
    // Classic running-sum trick, highest bucket first:
    //   running += B_i; total += running
    let mut running = G1Projective::identity();
    let mut total = G1Projective::identity();
    let mut adds = 0u64;
    for b in buckets.iter().rev() {
        if !b.is_identity() {
            running += *b;
            adds += 1;
        }
        if !running.is_identity() {
            total += running;
            adds += 1;
        }
    }
    (total, adds)
}

fn aggregate_grouped(buckets: &[G1Projective], group_size: usize) -> (G1Projective, u64) {
    assert!(group_size > 0, "group_size must be positive");
    if buckets.is_empty() {
        return (G1Projective::identity(), 0);
    }
    // Write Σ_{i=1}^{M} i·B_i with i = g·s + j (j = 1..s within group g):
    //   Σ_g [ Σ_j j·B_{g·s+j} ]  +  s · Σ_g g·( Σ_j B_{g·s+j} )
    // Each group's inner running sum is independent (parallel in hardware);
    // the cross-group term is itself a small running sum over group totals.
    let s = group_size;
    let mut adds = 0u64;
    let num_groups = buckets.len().div_ceil(s);
    let mut inner_weighted = Vec::with_capacity(num_groups); // Σ_j j·B within group
    let mut group_totals = Vec::with_capacity(num_groups); // Σ_j B within group
    for g in 0..num_groups {
        let chunk = &buckets[g * s..((g + 1) * s).min(buckets.len())];
        let mut running = G1Projective::identity();
        let mut weighted = G1Projective::identity();
        // Highest j first so the running sum accumulates the right weights.
        for b in chunk.iter().rev() {
            if !b.is_identity() {
                running += *b;
                adds += 1;
            }
            if !running.is_identity() {
                weighted += running;
                adds += 1;
            }
        }
        inner_weighted.push(weighted);
        group_totals.push(running);
    }
    // Cross-group term: s · Σ_g g·T_g, computed with a running sum over
    // groups from the highest index down to group 1 (group 0 contributes 0).
    let mut running = G1Projective::identity();
    let mut cross = G1Projective::identity();
    for t in group_totals.iter().skip(1).rev() {
        if !t.is_identity() {
            running += *t;
            adds += 1;
        }
        if !running.is_identity() {
            cross += running;
            adds += 1;
        }
    }
    // Multiply the cross-group sum by s via double-and-add (s is tiny).
    let mut s_times_cross = G1Projective::identity();
    if !cross.is_identity() {
        let mut bit = usize::BITS - s.leading_zeros();
        while bit > 0 {
            bit -= 1;
            s_times_cross = s_times_cross.double();
            if (s >> bit) & 1 == 1 {
                s_times_cross += cross;
                adds += 1;
            }
        }
    }
    let mut total = G1Projective::identity();
    for wsum in inner_weighted.iter() {
        if !wsum.is_identity() {
            total += *wsum;
            adds += 1;
        }
    }
    if !s_times_cross.is_identity() {
        total += s_times_cross;
        adds += 1;
    }
    (total, adds)
}

// ------------------------------------------------------------ sparse MSM ----

/// Computes a Sparse MSM as in the Witness Commit step: points whose scalar
/// is exactly 0 are skipped, points whose scalar is exactly 1 are summed with
/// a tree reduction, and the remaining dense scalars go through Pippenger.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sparse_msm(points: &[G1Affine], scalars: &[Fr]) -> (G1Projective, SparseMsmStats) {
    sparse_msm_on(&pool::Ambient, points, scalars)
}

/// [`sparse_msm`] on an explicit execution backend.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sparse_msm_on(
    backend: &dyn Backend,
    points: &[G1Affine],
    scalars: &[Fr],
) -> (G1Projective, SparseMsmStats) {
    sparse_msm_with_config_on(backend, points, scalars, MsmConfig::default())
}

/// [`sparse_msm`] on an explicit execution backend, running the dense
/// remainder through an explicit [`MsmConfig`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sparse_msm_with_config_on(
    backend: &dyn Backend,
    points: &[G1Affine],
    scalars: &[Fr],
    config: MsmConfig,
) -> (G1Projective, SparseMsmStats) {
    assert_eq!(points.len(), scalars.len(), "length mismatch");
    let one = Fr::one();
    let zero = Fr::zero();
    let mut ones_points = Vec::new();
    let mut dense_points = Vec::new();
    let mut dense_scalars = Vec::new();
    let mut stats = SparseMsmStats::default();
    for (p, s) in points.iter().zip(scalars.iter()) {
        if *s == zero {
            stats.zeros += 1;
        } else if *s == one {
            stats.ones += 1;
            ones_points.push(p.to_projective());
        } else {
            stats.dense += 1;
            dense_points.push(*p);
            dense_scalars.push(*s);
        }
    }
    // Tree reduction of the 1-valued points (maps to the pipelined PADD tree
    // in the MSM unit's sparse mode).
    let (ones_sum, tree_adds) = tree_sum(&ones_points);
    stats.ops.combine_adds += tree_adds;

    let (dense_sum, dense_stats) = msm_impl(
        backend,
        PointSource::Shared(&Arc::new(dense_points)),
        &dense_scalars,
        config,
    );
    stats.ops.merge(&dense_stats);
    let total = ones_sum + dense_sum;
    stats.ops.combine_adds += 1;
    (total, stats)
}

// ------------------------------------------------------ precomputed MSM ----

/// Selects the number of bucket-range jobs for the precomputed engine from
/// the problem size (`total_entries = n · num_windows` digit slots) — never
/// from the backend's thread count, so results and counters are
/// thread-count invariant. Each job re-scans the digit vector (cheap
/// integer work) but fills a disjoint bucket slice, so jobs need no
/// combine additions; ~4096 entries per job keep the scan overhead small.
fn auto_precomputed_jobs(total_entries: usize, num_buckets: usize) -> usize {
    (total_entries / 4096).clamp(1, 32).min(num_buckets)
}

/// Computes `Σ sᵢ·Bᵢ` over the fixed bases covered by a precomputed
/// [`MultiBaseTable`]: every scalar is signed-digit recoded at the table's
/// window width, each nonzero digit contributes one shifted base
/// `±2^{w·j}·Bᵢ` to a single flat bucket set of `2^{w−1}` buckets, and one
/// aggregation pass finishes the sum — **zero doublings** and no window
/// combine, the whole point of precomputing the session's bases.
///
/// `config` supplies the aggregation schedule and batch-affine threshold;
/// `config.window_bits` and `config.signed_digits` are ignored (the table's
/// width wins and recoding is always signed). The result is the same group
/// element any other schedule computes.
///
/// # Panics
///
/// Panics if `scalars` is longer than the table's base count (shorter is
/// fine: a prefix MSM, as the halving openings need).
pub fn msm_precomputed_on(
    backend: &dyn Backend,
    table: &Arc<MultiBaseTable>,
    scalars: &[Fr],
    config: MsmConfig,
) -> (G1Projective, MsmStats) {
    assert!(
        scalars.len() <= table.num_bases(),
        "more scalars than precomputed bases"
    );
    msm_precomputed_impl(backend, table, None, scalars, config)
}

/// The Sparse MSM of the Witness Commit step over precomputed tables:
/// 0-scalars are skipped, 1-scalars are tree-summed directly from the
/// table's base entries, and the dense remainder runs through the
/// precomputed bucket engine (the dense bases are non-contiguous, so their
/// table rows are addressed through an index vector).
///
/// # Panics
///
/// Panics if `scalars` is longer than the table's base count.
pub fn sparse_msm_precomputed_on(
    backend: &dyn Backend,
    table: &Arc<MultiBaseTable>,
    scalars: &[Fr],
    config: MsmConfig,
) -> (G1Projective, SparseMsmStats) {
    assert!(
        scalars.len() <= table.num_bases(),
        "more scalars than precomputed bases"
    );
    let one = Fr::one();
    let zero = Fr::zero();
    let mut ones_points = Vec::new();
    let mut dense_indices: Vec<u32> = Vec::new();
    let mut dense_scalars = Vec::new();
    let mut stats = SparseMsmStats::default();
    for (i, s) in scalars.iter().enumerate() {
        if *s == zero {
            stats.zeros += 1;
        } else if *s == one {
            stats.ones += 1;
            ones_points.push(table.base(i).to_projective());
        } else {
            stats.dense += 1;
            dense_indices.push(i as u32);
            dense_scalars.push(*s);
        }
    }
    let (ones_sum, tree_adds) = tree_sum(&ones_points);
    stats.ops.combine_adds += tree_adds;

    let (dense_sum, dense_stats) = msm_precomputed_impl(
        backend,
        table,
        Some(Arc::new(dense_indices)),
        &dense_scalars,
        config,
    );
    stats.ops.merge(&dense_stats);
    let total = ones_sum + dense_sum;
    stats.ops.combine_adds += 1;
    (total, stats)
}

/// Immutable inputs of one precomputed MSM run, shared by every
/// bucket-range job.
struct PrecomputedInstance {
    table: Arc<MultiBaseTable>,
    /// Table row of each scalar (`None` = identity mapping, the dense case).
    indices: Option<Arc<Vec<u32>>>,
    scalar_limbs: Arc<Vec<[u64; 4]>>,
    carries: Arc<Vec<CarryMask>>,
    config: MsmConfig,
    /// Disjoint bucket index ranges, one per job.
    bucket_ranges: Vec<Range<usize>>,
}

impl PrecomputedInstance {
    /// Fills one job's bucket slice: scans every (scalar, window) digit and
    /// keeps only the entries whose bucket falls in the job's range. The
    /// scan repeats cheap integer recoding per job; all the point
    /// arithmetic is disjoint across jobs, so no combine pass follows.
    fn fill_bucket_range(&self, job: usize) -> FilledSegment {
        let range = self.bucket_ranges[job].clone();
        let w = self.table.window_bits();
        let num_windows = self.table.num_windows();
        let mut entries: Vec<(u32, G1Affine)> = Vec::new();
        for (i, limbs) in self.scalar_limbs.iter().enumerate() {
            let carries = &self.carries[i];
            let base = match &self.indices {
                Some(idx) => idx[i] as usize,
                None => i,
            };
            for window in 0..num_windows {
                let d = signed_window_digit(limbs, carries, window, w);
                if d == 0 {
                    continue;
                }
                let bucket = d.unsigned_abs() as usize - 1;
                if !range.contains(&bucket) {
                    continue;
                }
                let point = self.table.entry(base, window);
                if point.infinity {
                    continue;
                }
                let point = if d < 0 { point.neg() } else { *point };
                entries.push(((bucket - range.start) as u32, point));
            }
        }
        let nonempty = !entries.is_empty();
        if entries.len() >= self.config.batch_affine_min_points {
            let (buckets, affine_adds, batch_inversions) =
                batch_affine_bucket_sums(range.len(), entries);
            FilledSegment {
                buckets,
                nonempty,
                bucket_adds: 0,
                affine_adds,
                batch_inversions,
            }
        } else {
            let mut buckets = vec![G1Projective::identity(); range.len()];
            let mut bucket_adds = 0u64;
            for (bucket, point) in entries {
                let slot = &mut buckets[bucket as usize];
                if slot.is_identity() {
                    *slot = point.to_projective();
                } else {
                    *slot = slot.add_mixed(&point);
                    bucket_adds += 1;
                }
            }
            FilledSegment {
                buckets,
                nonempty,
                bucket_adds,
                affine_adds: 0,
                batch_inversions: 0,
            }
        }
    }
}

fn msm_precomputed_impl(
    backend: &dyn Backend,
    table: &Arc<MultiBaseTable>,
    indices: Option<Arc<Vec<u32>>>,
    scalars: &[Fr],
    config: MsmConfig,
) -> (G1Projective, MsmStats) {
    let n = scalars.len();
    let mut stats = MsmStats::default();
    if n == 0 {
        return (G1Projective::identity(), stats);
    }
    let w = table.window_bits();
    let num_windows = table.num_windows();
    let num_buckets = 1usize << (w - 1);
    let scalar_limbs: Vec<[u64; 4]> = scalars.iter().map(|s| s.to_canonical_limbs()).collect();
    let carries: Vec<CarryMask> = scalar_limbs
        .iter()
        .map(|limbs| recode_carries(limbs, w, num_windows))
        .collect();
    stats.recoded_scalars = n as u64;

    let total_entries = n * num_windows;
    let jobs = auto_precomputed_jobs(total_entries, num_buckets);
    let bucket_ranges = zkspeed_rt::par::split_ranges(num_buckets, jobs);
    let num_jobs = bucket_ranges.len();
    let instance = PrecomputedInstance {
        table: Arc::clone(table),
        indices,
        scalar_limbs: Arc::new(scalar_limbs),
        carries: Arc::new(carries),
        config,
        bucket_ranges,
    };

    // Same fan-out policy as `msm_impl`: below the parallel floor the work
    // stays on the calling thread; workers measure and hand back their
    // modmul deltas so the profiling counters match a serial run.
    const PAR_MIN_POINTS: usize = 256;
    let parallel = total_entries >= PAR_MIN_POINTS && backend.threads() > 1 && num_jobs > 1;
    let segments: Vec<(FilledSegment, zkspeed_field::ModmulCount)> = if parallel {
        let instance = Arc::new(instance);
        pool::map_indices_on(backend, num_jobs, move |job| {
            zkspeed_field::measure_modmuls(|| instance.fill_bucket_range(job))
        })
    } else {
        (0..num_jobs)
            .map(|job| zkspeed_field::measure_modmuls(|| instance.fill_bucket_range(job)))
            .collect()
    };

    // Concatenate the disjoint bucket slices in range order (zero combine
    // additions) and finish with the single aggregation pass.
    let mut buckets = Vec::with_capacity(num_buckets);
    let mut any = false;
    for (segment, muls) in segments {
        zkspeed_field::add_modmul_count(muls);
        stats.bucket_adds += segment.bucket_adds;
        stats.affine_adds += segment.affine_adds;
        stats.batch_inversions += segment.batch_inversions;
        any |= segment.nonempty;
        buckets.extend(segment.buckets);
    }
    if !any {
        return (G1Projective::identity(), stats);
    }
    let (sum, agg_adds) = aggregate_buckets(&buckets, config.aggregation);
    stats.aggregation_adds = agg_adds;
    (sum, stats)
}

/// Sums a slice of points with a binary-tree reduction, returning the sum and
/// the number of point additions.
pub fn tree_sum(points: &[G1Projective]) -> (G1Projective, u64) {
    if points.is_empty() {
        return (G1Projective::identity(), 0);
    }
    let mut layer: Vec<G1Projective> = points.to_vec();
    let mut adds = 0u64;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for chunk in layer.chunks(2) {
            if chunk.len() == 2 {
                next.push(chunk[0] + chunk[1]);
                adds += 1;
            } else {
                next.push(chunk[0]);
            }
        }
        layer = next;
    }
    (layer[0], adds)
}

/// Extracts `width` bits starting at bit offset `offset` from a canonical
/// 4-limb scalar.
fn extract_window(limbs: &[u64; 4], offset: usize, width: usize) -> usize {
    if offset >= 256 {
        return 0;
    }
    let limb_idx = offset / 64;
    let bit_idx = offset % 64;
    let mut value = limbs[limb_idx] >> bit_idx;
    if bit_idx + width > 64 && limb_idx + 1 < 4 {
        value |= limbs[limb_idx + 1] << (64 - bit_idx);
    }
    (value & ((1u64 << width) - 1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkspeed_rt::pool::{Serial, ThreadPool};
    use zkspeed_rt::rngs::StdRng;
    use zkspeed_rt::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed_0004)
    }

    fn random_points(n: usize, rng: &mut StdRng) -> Vec<G1Affine> {
        let proj: Vec<G1Projective> = (0..n).map(|_| G1Projective::random(rng)).collect();
        G1Projective::batch_to_affine(&proj)
    }

    /// Every meaningfully distinct engine configuration (schedule ×
    /// signedness × accumulation path), used by the equivalence tests.
    fn all_configs() -> Vec<(&'static str, MsmConfig)> {
        vec![
            ("classic", MsmConfig::classic()),
            ("signed", MsmConfig::classic().with_signed_digits(true)),
            (
                "intra-window",
                MsmConfig::classic().with_schedule(MsmSchedule::IntraWindow { chunks: 3 }),
            ),
            (
                "batch-affine",
                MsmConfig::classic().with_batch_affine_min_points(0),
            ),
            ("optimized", MsmConfig::optimized()),
            (
                "optimized-forced",
                MsmConfig::optimized()
                    .with_schedule(MsmSchedule::IntraWindow { chunks: 4 })
                    .with_batch_affine_min_points(0),
            ),
        ]
    }

    #[test]
    fn empty_msm_is_identity() {
        for (name, config) in all_configs() {
            let (r, stats) = msm_with_config(&[], &[], config);
            assert_eq!(r, G1Projective::identity(), "{name}");
            assert_eq!(stats, MsmStats::default(), "{name}");
        }
        assert_eq!(msm(&[], &[]), G1Projective::identity());
        let (r, s) = sparse_msm(&[], &[]);
        assert_eq!(r, G1Projective::identity());
        assert_eq!(s.zeros + s.ones + s.dense, 0);
    }

    #[test]
    fn pippenger_matches_naive_small() {
        let mut r = rng();
        for n in [1usize, 2, 3, 7, 16, 33] {
            let points = random_points(n, &mut r);
            let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut r)).collect();
            let expect = naive_msm(&points, &scalars);
            assert_eq!(msm(&points, &scalars), expect, "n = {n}");
            for (name, config) in all_configs() {
                let (res, _) = msm_with_config(&points, &scalars, config);
                assert_eq!(res, expect, "n = {n}, config = {name}");
            }
        }
    }

    #[test]
    fn pippenger_matches_naive_across_windows_and_schedules() {
        let mut r = rng();
        let n = 40;
        let points = random_points(n, &mut r);
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut r)).collect();
        let expect = naive_msm(&points, &scalars);
        for w in [2usize, 4, 7, 8, 9, 10, 13] {
            for agg in [
                Aggregation::Serial,
                Aggregation::Grouped { group_size: 16 },
                Aggregation::Grouped { group_size: 3 },
                Aggregation::Grouped { group_size: 1 },
            ] {
                for (name, base) in all_configs() {
                    let mut cfg = base.with_window_bits(w);
                    cfg.aggregation = agg;
                    let (res, stats) = msm_with_config(&points, &scalars, cfg);
                    assert_eq!(res, expect, "w = {w}, agg = {agg:?}, config = {name}");
                    assert!(stats.total_adds() > 0);
                    assert!(stats.fq_muls() > 0);
                }
            }
        }
    }

    #[test]
    fn signed_digits_match_naive_across_every_window_size() {
        // window_bits ∈ {1..16} exercises the recoding boundaries: w = 1
        // (256 windows, digits {0, 1}), the auto range 7–10, and w = 16
        // (the extended top window absorbing the final carry).
        let mut r = rng();
        let n = 5;
        let points = random_points(n, &mut r);
        // Include the carry-heavy extremes alongside random scalars.
        let scalars = vec![
            Fr::zero(),
            Fr::one(),
            -Fr::one(),       // r − 1: every signed window carries
            -Fr::from_u64(2), // r − 2
            Fr::random(&mut r),
        ];
        let expect = naive_msm(&points, &scalars);
        for w in 1..=16usize {
            for config in [
                MsmConfig::classic()
                    .with_signed_digits(true)
                    .with_window_bits(w),
                MsmConfig::optimized()
                    .with_batch_affine_min_points(0)
                    .with_window_bits(w),
            ] {
                let (res, stats) = msm_with_config(&points, &scalars, config);
                assert_eq!(res, expect, "w = {w}, config = {config:?}");
                assert_eq!(stats.recoded_scalars, n as u64);
            }
        }
    }

    #[test]
    fn single_point_and_extreme_scalars() {
        let mut r = rng();
        let point = random_points(1, &mut r);
        for scalar in [Fr::zero(), Fr::one(), -Fr::one(), Fr::random(&mut r)] {
            let expect = naive_msm(&point, &[scalar]);
            for (name, config) in all_configs() {
                let (res, _) = msm_with_config(&point, &[scalar], config);
                assert_eq!(res, expect, "scalar = {scalar}, config = {name}");
            }
        }
    }

    #[test]
    fn special_scalars() {
        let mut r = rng();
        let points = random_points(5, &mut r);
        // All zeros: no window is ever touched, no ops are counted.
        let zeros = vec![Fr::zero(); 5];
        for (name, config) in all_configs() {
            let (res, stats) = msm_with_config(&points, &zeros, config);
            assert_eq!(res, G1Projective::identity(), "{name}");
            assert_eq!(stats.total_adds(), 0, "{name}");
            assert_eq!(stats.doublings, 0, "{name}");
        }
        // All ones: MSM equals the plain sum.
        let ones = vec![Fr::one(); 5];
        let sum: G1Projective = points.iter().map(|p| p.to_projective()).sum();
        assert_eq!(msm(&points, &ones), sum);
        // Scalar with every window populated (r - 1).
        let big = vec![-Fr::one(); 5];
        assert_eq!(msm(&points, &big), naive_msm(&points, &big));
    }

    #[test]
    fn identity_points_are_skipped() {
        let mut r = rng();
        let mut points = random_points(6, &mut r);
        points[1] = G1Affine::identity();
        points[4] = G1Affine::identity();
        let scalars: Vec<Fr> = (0..6).map(|_| Fr::random(&mut r)).collect();
        let expect = naive_msm(&points, &scalars);
        for (name, config) in all_configs() {
            let (res, _) = msm_with_config(&points, &scalars, config);
            assert_eq!(res, expect, "config = {name}");
        }
    }

    #[test]
    fn batch_affine_handles_equal_and_inverse_points() {
        // Equal scalars land every point in the same bucket per window, so
        // the batch-affine rounds must take the doubling (P + P) and the
        // cancellation (P + (−P)) branches.
        let g = G1Projective::generator();
        let g2 = g.double();
        let points = vec![
            g.to_affine(),
            g.to_affine(),       // doubling pair
            g.neg().to_affine(), // cancels one g
            g2.to_affine(),
            G1Affine::identity(), // identity input passes through
            g2.neg().to_affine(), // cancels g2
        ];
        let mut r = rng();
        for scalar in [Fr::from_u64(5), Fr::random(&mut r), -Fr::one()] {
            let scalars = vec![scalar; points.len()];
            let expect = naive_msm(&points, &scalars);
            for signed in [false, true] {
                let config = MsmConfig::classic()
                    .with_signed_digits(signed)
                    .with_batch_affine_min_points(0);
                let (res, stats) = msm_with_config(&points, &scalars, config);
                assert_eq!(res, expect, "scalar = {scalar}, signed = {signed}");
                assert!(stats.affine_adds > 0 || stats.total_adds() == 0);
                assert_eq!(stats.bucket_adds, 0, "all fills must be batch-affine");
            }
        }
    }

    #[test]
    fn schedules_are_backend_invariant() {
        // 512 points exceed PAR_MIN_POINTS, so the pool genuinely fans out;
        // results AND counters must match the serial run for every config.
        let mut r = rng();
        let n = 512;
        let points = random_points(n, &mut r);
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut r)).collect();
        let expect = naive_msm(&points, &scalars);
        let pool = ThreadPool::new(8);
        for (name, config) in all_configs() {
            let serial = msm_with_config_on(&Serial, &points, &scalars, config);
            let pooled = msm_with_config_on(&pool, &points, &scalars, config);
            assert_eq!(serial.0, expect, "{name}: serial result");
            assert_eq!(pooled.0, serial.0, "{name}: pooled result drifted");
            assert_eq!(pooled.1, serial.1, "{name}: pooled stats drifted");
        }
    }

    #[test]
    fn optimized_engine_reduces_fq_muls() {
        let mut r = rng();
        let n = 1 << 10;
        let points = random_points(n, &mut r);
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut r)).collect();
        let (classic_res, classic) =
            msm_with_config(&points, &scalars, MsmConfig::classic().with_window_bits(8));
        let (optimized_res, optimized) = msm_with_config(
            &points,
            &scalars,
            MsmConfig::optimized().with_window_bits(8),
        );
        assert_eq!(classic_res, optimized_res);
        assert!(
            optimized.fq_muls() * 10 < classic.fq_muls() * 8,
            "expected ≥20% fewer Fq muls: classic {} vs optimized {}",
            classic.fq_muls(),
            optimized.fq_muls()
        );
        assert!(optimized.affine_adds > 0);
        assert!(optimized.batch_inversions > 0);
        assert_eq!(optimized.recoded_scalars, n as u64);
    }

    #[test]
    fn sparse_msm_matches_dense_reference() {
        let mut r = rng();
        let n = 64;
        let points = random_points(n, &mut r);
        // 45% zeros, 45% ones, 10% dense — the paper's witness statistics.
        let mut scalars: Vec<Fr> = Vec::with_capacity(n);
        for _ in 0..n {
            let roll: f64 = r.gen();
            let s = if roll < 0.45 {
                Fr::zero()
            } else if roll < 0.90 {
                Fr::one()
            } else {
                Fr::random(&mut r)
            };
            scalars.push(s);
        }
        let expect = naive_msm(&points, &scalars);
        let (result, stats) = sparse_msm(&points, &scalars);
        assert_eq!(result, expect);
        assert_eq!(stats.zeros + stats.ones + stats.dense, n);
        assert!(stats.ones > 0);
        assert!(stats.zeros > 0);
        // An explicit config on the dense remainder agrees.
        let (classic, _) =
            sparse_msm_with_config_on(&Serial, &points, &scalars, MsmConfig::classic());
        assert_eq!(classic, expect);
    }

    #[test]
    fn aggregation_schedules_agree() {
        let mut r = rng();
        let buckets: Vec<G1Projective> = (0..31).map(|_| G1Projective::random(&mut r)).collect();
        let (serial, serial_adds) = aggregate_buckets(&buckets, Aggregation::Serial);
        for gs in [1usize, 2, 4, 8, 16, 31, 64] {
            let (grouped, _) = aggregate_buckets(&buckets, Aggregation::Grouped { group_size: gs });
            assert_eq!(grouped, serial, "group_size = {gs}");
        }
        assert_eq!(serial_adds, 2 * 31);
        // Identity buckets are skipped and not counted.
        let mut sparse = buckets.clone();
        sparse[3] = G1Projective::identity();
        sparse[17] = G1Projective::identity();
        let (sparse_serial, sparse_adds) = aggregate_buckets(&sparse, Aggregation::Serial);
        assert_eq!(sparse_adds, 2 * 31 - 2);
        let (sparse_grouped, _) =
            aggregate_buckets(&sparse, Aggregation::Grouped { group_size: 4 });
        assert_eq!(sparse_grouped, sparse_serial);
    }

    #[test]
    fn aggregation_weights_are_correct() {
        // Buckets holding i·G should aggregate to Σ i²·G.
        let g = G1Projective::generator();
        let buckets: Vec<G1Projective> = (1..=10u64)
            .map(|i| g.mul_scalar(&Fr::from_u64(i)))
            .collect();
        let expect = g.mul_scalar(&Fr::from_u64((1..=10u64).map(|i| i * i).sum()));
        let (serial, _) = aggregate_buckets(&buckets, Aggregation::Serial);
        let (grouped, _) = aggregate_buckets(&buckets, Aggregation::Grouped { group_size: 4 });
        assert_eq!(serial, expect);
        assert_eq!(grouped, expect);
    }

    #[test]
    fn tree_sum_matches_linear_sum() {
        let mut r = rng();
        for n in [0usize, 1, 2, 5, 16, 17] {
            let points: Vec<G1Projective> = (0..n).map(|_| G1Projective::random(&mut r)).collect();
            let linear: G1Projective = points.iter().copied().sum();
            let (tree, adds) = tree_sum(&points);
            assert_eq!(tree, linear, "n = {n}");
            assert_eq!(adds, n.saturating_sub(1) as u64);
        }
    }

    #[test]
    fn window_extraction() {
        let limbs = [0xffff_ffff_ffff_ffffu64, 0x1, 0, 0];
        assert_eq!(extract_window(&limbs, 0, 8), 0xff);
        assert_eq!(extract_window(&limbs, 60, 8), 0x1f);
        assert_eq!(extract_window(&limbs, 64, 8), 0x01);
        assert_eq!(extract_window(&limbs, 300, 8), 0);
    }

    #[test]
    fn signed_recoding_reconstructs_the_scalar() {
        // Σ dᵢ·2^{wi} recovered over the integers must equal the canonical
        // scalar, and every digit must lie in [−2^{w−1}, 2^{w−1}].
        let mut r = rng();
        let mut scalars = vec![Fr::zero(), Fr::one(), -Fr::one(), -Fr::from_u64(2)];
        scalars.extend((0..4).map(|_| Fr::random(&mut r)));
        for w in [1usize, 3, 8, 13, 16] {
            let num_windows = (Fr::NUM_BITS as usize).div_ceil(w) + 1;
            let half = 1i64 << (w - 1);
            for s in &scalars {
                let limbs = s.to_canonical_limbs();
                let carries = recode_carries(&limbs, w, num_windows);
                // Reconstruct as an Fr Horner sum: Σ dᵢ·2^{wi}.
                let two_pow_w = Fr::from_u64(1u64 << w);
                let mut acc = Fr::zero();
                for i in (0..num_windows).rev() {
                    let d = signed_window_digit(&limbs, &carries, i, w);
                    assert!((-half..=half).contains(&d), "w = {w}, digit {d}");
                    acc *= two_pow_w;
                    if d >= 0 {
                        acc += Fr::from_u64(d as u64);
                    } else {
                        acc -= Fr::from_u64((-d) as u64);
                    }
                }
                assert_eq!(acc, *s, "w = {w}, scalar {s}");
            }
        }
    }

    #[test]
    fn auto_window_is_in_explored_range() {
        assert!(auto_window_bits(16) <= 10);
        for n in [1usize << 10, 1 << 16, 1 << 20] {
            let w = auto_window_bits(n);
            assert!((7..=10).contains(&w), "n = {n}, w = {w}");
        }
        assert_eq!(auto_intra_window_chunks(1), 1);
        assert_eq!(auto_intra_window_chunks(1 << 12), 2);
        assert_eq!(auto_intra_window_chunks(1 << 20), 16);
    }

    #[test]
    fn precomputed_matches_naive_across_window_bits() {
        let mut r = rng();
        let n = 40;
        let points = random_points(n, &mut r);
        let shared = Arc::new(points.clone());
        // Edge scalars exercise the recoding carries; random fill the rest.
        let mut scalars = vec![Fr::zero(), Fr::one(), -Fr::one(), -Fr::from_u64(2)];
        scalars.extend((4..n).map(|_| Fr::random(&mut r)));
        let expect = naive_msm(&points, &scalars);
        for w in [1usize, 4, 8, 12, 16] {
            let table = Arc::new(MultiBaseTable::build_on(&shared, w, &Serial));
            for min_points in [0usize, usize::MAX] {
                let config = MsmConfig::precomputed().with_batch_affine_min_points(min_points);
                let (res, stats) = msm_precomputed_on(&Serial, &table, &scalars, config);
                assert_eq!(res, expect, "w = {w}, min_points = {min_points}");
                assert_eq!(stats.doublings, 0, "precomputed engine never doubles");
                assert_eq!(stats.combine_adds, 0);
                assert_eq!(stats.partial_combine_adds, 0);
                assert_eq!(stats.recoded_scalars, n as u64);
            }
        }
        // Prefix MSMs (fewer scalars than bases) are allowed.
        let table = Arc::new(MultiBaseTable::build_on(&shared, 8, &Serial));
        let (prefix, _) =
            msm_precomputed_on(&Serial, &table, &scalars[..7], MsmConfig::precomputed());
        assert_eq!(prefix, naive_msm(&points[..7], &scalars[..7]));
        // Empty input.
        let (empty, empty_stats) =
            msm_precomputed_on(&Serial, &table, &[], MsmConfig::precomputed());
        assert_eq!(empty, G1Projective::identity());
        assert_eq!(empty_stats, MsmStats::default());
    }

    #[test]
    fn precomputed_is_thread_count_invariant() {
        // Enough entries that the bucket-range jobs genuinely fan out.
        let mut r = rng();
        let n = 512;
        let points = Arc::new(random_points(n, &mut r));
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut r)).collect();
        let table = Arc::new(MultiBaseTable::build_on(&points, 10, &Serial));
        let config = MsmConfig::precomputed();
        let serial = msm_precomputed_on(&Serial, &table, &scalars, config);
        assert_eq!(serial.0, naive_msm(&points, &scalars));
        for threads in [1usize, 2, 8] {
            let pool = ThreadPool::new(threads);
            let pooled = msm_precomputed_on(&pool, &table, &scalars, config);
            assert_eq!(pooled.0, serial.0, "threads = {threads}: result drifted");
            assert_eq!(pooled.1, serial.1, "threads = {threads}: stats drifted");
        }
    }

    #[test]
    fn sparse_precomputed_matches_dense_reference() {
        let mut r = rng();
        let n = 300;
        let points = Arc::new(random_points(n, &mut r));
        // Witness-like sparsity so all three classes are populated.
        let scalars: Vec<Fr> = (0..n)
            .map(|i| match i % 10 {
                0..=3 => Fr::zero(),
                4..=8 => Fr::one(),
                _ => Fr::random(&mut r),
            })
            .collect();
        let expect = naive_msm(&points, &scalars);
        let table = Arc::new(MultiBaseTable::build_on(&points, 9, &Serial));
        let config = MsmConfig::precomputed();
        let serial = sparse_msm_precomputed_on(&Serial, &table, &scalars, config);
        assert_eq!(serial.0, expect);
        assert!(serial.1.zeros > 0 && serial.1.ones > 0 && serial.1.dense > 0);
        assert_eq!(serial.1.ops.doublings, 0);
        let pooled = sparse_msm_precomputed_on(&ThreadPool::new(8), &table, &scalars, config);
        assert_eq!(pooled.0, serial.0);
        assert_eq!(pooled.1, serial.1);
    }

    #[test]
    fn precomputed_schedule_without_table_falls_back() {
        // The plain engine has no table, so MsmSchedule::Precomputed must
        // degrade to the intra-window decomposition and still be correct.
        let mut r = rng();
        let n = 100;
        let points = random_points(n, &mut r);
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut r)).collect();
        let (res, stats) = msm_with_config(&points, &scalars, MsmConfig::precomputed());
        assert_eq!(res, naive_msm(&points, &scalars));
        assert!(stats.total_adds() > 0);
    }

    #[test]
    fn precomputed_engine_reduces_fq_muls() {
        // The whole point: at session sizes the table engine beats the best
        // table-free schedule on Fq multiplications (no doublings, one
        // aggregation for the whole MSM instead of one per window).
        let mut r = rng();
        let n = 1 << 10;
        let points = Arc::new(random_points(n, &mut r));
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut r)).collect();
        let (opt_res, optimized) = msm_with_config(&points, &scalars, MsmConfig::optimized());
        let table = Arc::new(MultiBaseTable::build_on(
            &points,
            crate::MULTI_BASE_DEFAULT_WINDOW_BITS,
            &Serial,
        ));
        let (pre_res, precomputed) =
            msm_precomputed_on(&Serial, &table, &scalars, MsmConfig::precomputed());
        assert_eq!(pre_res, opt_res);
        assert!(
            precomputed.fq_muls() * 4 < optimized.fq_muls() * 3,
            "expected ≥25% fewer Fq muls: optimized {} vs precomputed {}",
            optimized.fq_muls(),
            precomputed.fq_muls()
        );
        assert_eq!(precomputed.doublings, 0);
        assert!(precomputed.affine_adds > 0);
    }

    #[test]
    fn auto_precomputed_jobs_scale_with_problem_size() {
        assert_eq!(auto_precomputed_jobs(100, 2048), 1);
        assert_eq!(auto_precomputed_jobs(16 * 4096, 2048), 16);
        assert_eq!(auto_precomputed_jobs(1 << 24, 2048), 32);
        // Never more jobs than buckets.
        assert_eq!(auto_precomputed_jobs(1 << 24, 4), 4);
    }
}
