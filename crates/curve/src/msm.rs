//! Multi-scalar multiplication (MSM) kernels.
//!
//! MSMs — dot products `Σ sᵢ·Pᵢ` between scalar vectors and G1 point vectors
//! — implement the polynomial commitments of HyperPlonk and are the largest
//! compute consumer in the protocol (Table 1 of the zkSpeed paper). This
//! module provides:
//!
//! * [`naive_msm`] — the double-and-add reference used as a test oracle;
//! * [`msm`] / [`msm_with_config`] — Pippenger's bucket algorithm with a
//!   configurable window size and a choice of bucket-aggregation schedule
//!   (the serial SZKP-style schedule or zkSpeed's grouped schedule, Fig. 5);
//! * [`sparse_msm`] — the Sparse MSM used for Witness Commits, where scalars
//!   that are 0 or 1 bypass Pippenger entirely (Section 3.3.1);
//! * operation counters ([`MsmStats`]) that feed the hardware cost model.

use std::sync::Arc;

use zkspeed_field::Fr;
use zkspeed_rt::pool::{self, Backend};

use crate::g1::{G1Affine, G1Projective};

/// How bucket sums are aggregated into the per-window total `Σ i·Bᵢ`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Aggregation {
    /// The serial running-sum schedule used by SZKP: one long dependency
    /// chain of `2·(2^w − 1)` point additions that cannot exploit a
    /// pipelined adder.
    Serial,
    /// zkSpeed's grouped schedule (adapted from PriorMSM): buckets are split
    /// into groups of `group_size`, partial sums are computed per group (in
    /// parallel in hardware), and the group results are combined at the end.
    Grouped {
        /// Number of buckets per group (the paper selects 16).
        group_size: usize,
    },
}

impl Default for Aggregation {
    fn default() -> Self {
        Aggregation::Grouped { group_size: 16 }
    }
}

/// Configuration for a Pippenger MSM run.
#[derive(Copy, Clone, Debug, Default)]
pub struct MsmConfig {
    /// Window (bucket index) size in bits.
    pub window_bits: usize,
    /// Bucket aggregation schedule.
    pub aggregation: Aggregation,
}

/// Operation counts of an MSM execution, used by the zkSpeed hardware model
/// to translate functional work into PADD-unit cycles and modmuls.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MsmStats {
    /// Point additions performed while filling buckets.
    pub bucket_adds: u64,
    /// Point additions performed during bucket aggregation.
    pub aggregation_adds: u64,
    /// Point additions performed while combining windows / tree-summing.
    pub combine_adds: u64,
    /// Point doublings performed while combining windows.
    pub doublings: u64,
}

impl MsmStats {
    /// Total point additions (excluding doublings).
    pub fn total_adds(&self) -> u64 {
        self.bucket_adds + self.aggregation_adds + self.combine_adds
    }

    /// Total Fq modular multiplications implied by the counted operations.
    pub fn fq_muls(&self) -> u64 {
        self.total_adds() * crate::g1::PADD_FQ_MULS as u64
            + self.doublings * crate::g1::PDBL_FQ_MULS as u64
    }

    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: &MsmStats) {
        self.bucket_adds += other.bucket_adds;
        self.aggregation_adds += other.aggregation_adds;
        self.combine_adds += other.combine_adds;
        self.doublings += other.doublings;
    }
}

/// Statistics of a sparse MSM split (Witness Commit step).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SparseMsmStats {
    /// Number of zero scalars (skipped entirely).
    pub zeros: usize,
    /// Number of one scalars (handled by the tree adder).
    pub ones: usize,
    /// Number of dense (full-width) scalars handled by Pippenger.
    pub dense: usize,
    /// Operation counts of the overall computation.
    pub ops: MsmStats,
}

/// Reference MSM: independent double-and-add per term. `O(n·255)` point
/// operations; used only as a correctness oracle in tests and for tiny MSMs.
pub fn naive_msm(points: &[G1Affine], scalars: &[Fr]) -> G1Projective {
    assert_eq!(points.len(), scalars.len(), "length mismatch");
    let mut acc = G1Projective::identity();
    for (p, s) in points.iter().zip(scalars.iter()) {
        acc += p.to_projective().mul_scalar(s);
    }
    acc
}

/// Selects a window size from the problem size, mirroring the usual
/// `log₂(n)`-driven heuristic (clamped to the 7–10 bit range the zkSpeed DSE
/// explores for its MSM unit, Table 2).
pub fn auto_window_bits(n: usize) -> usize {
    if n < 32 {
        3
    } else {
        let log = usize::BITS as usize - n.leading_zeros() as usize; // ~ceil(log2)
        (log.saturating_sub(3)).clamp(7, 10).min(16)
    }
}

/// Computes `Σ sᵢ·Pᵢ` with Pippenger's algorithm using default configuration.
///
/// # Panics
///
/// Panics if `points` and `scalars` have different lengths.
///
/// # Examples
///
/// ```
/// use zkspeed_curve::{msm, G1Affine, G1Projective};
/// use zkspeed_field::Fr;
///
/// let g = G1Projective::generator();
/// let points = vec![g.to_affine(), g.double().to_affine()];
/// let scalars = vec![Fr::from_u64(3), Fr::from_u64(5)];
/// // 3·G + 5·(2G) = 13·G
/// assert_eq!(msm(&points, &scalars), g.mul_scalar(&Fr::from_u64(13)));
/// ```
pub fn msm(points: &[G1Affine], scalars: &[Fr]) -> G1Projective {
    msm_with_config(points, scalars, MsmConfig::default()).0
}

/// Computes `Σ sᵢ·Pᵢ` with Pippenger's algorithm and an explicit
/// configuration, returning the result together with operation counts.
///
/// Parallel fan-out follows the ambient configuration (`ZKSPEED_THREADS`,
/// [`zkspeed_rt::par::with_threads`]); use [`msm_with_config_on`] to pin an
/// explicit [`Backend`].
///
/// # Panics
///
/// Panics if the slices have different lengths or if a grouped aggregation
/// with `group_size == 0` is requested.
pub fn msm_with_config(
    points: &[G1Affine],
    scalars: &[Fr],
    config: MsmConfig,
) -> (G1Projective, MsmStats) {
    msm_with_config_on(&pool::Ambient, points, scalars, config)
}

/// [`msm_with_config`] on an explicit execution backend.
///
/// # Panics
///
/// Panics if the slices have different lengths or if a grouped aggregation
/// with `group_size == 0` is requested.
pub fn msm_with_config_on(
    backend: &dyn Backend,
    points: &[G1Affine],
    scalars: &[Fr],
    config: MsmConfig,
) -> (G1Projective, MsmStats) {
    msm_impl(backend, PointSource::Borrowed(points), scalars, config)
}

/// [`msm_with_config`] over a shared point vector: when the backend goes
/// parallel the `Arc` is cloned into the worker jobs instead of copying the
/// points, so SRS-basis commitments fan out with zero point copies.
///
/// # Panics
///
/// Panics if the lengths mismatch or if a grouped aggregation with
/// `group_size == 0` is requested.
pub fn msm_with_config_shared(
    backend: &dyn Backend,
    points: &Arc<Vec<G1Affine>>,
    scalars: &[Fr],
    config: MsmConfig,
) -> (G1Projective, MsmStats) {
    msm_impl(backend, PointSource::Shared(points), scalars, config)
}

/// How an MSM receives its point vector: borrowed (copied into an `Arc` only
/// if the run actually fans out) or already shared.
enum PointSource<'a> {
    Borrowed(&'a [G1Affine]),
    Shared(&'a Arc<Vec<G1Affine>>),
}

impl PointSource<'_> {
    fn as_slice(&self) -> &[G1Affine] {
        match self {
            PointSource::Borrowed(p) => p,
            PointSource::Shared(a) => a.as_slice(),
        }
    }

    fn to_shared(&self) -> Arc<Vec<G1Affine>> {
        match self {
            // One pass of memcpy (~10 ns/point) against hundreds of point
            // additions per point of MSM work; hot callers that own an Arc
            // (SRS-basis commits) take the Shared arm and copy nothing.
            PointSource::Borrowed(p) => Arc::new(p.to_vec()),
            PointSource::Shared(a) => Arc::clone(a),
        }
    }
}

/// One window's bucket accumulation and aggregation — the unit of parallel
/// work. Returns the window sum plus the bucket/aggregation addition counts.
fn window_contribution(
    points: &[G1Affine],
    scalar_limbs: &[[u64; 4]],
    window: usize,
    w: usize,
    num_buckets: usize,
    aggregation: Aggregation,
) -> (G1Projective, u64, u64) {
    let mut buckets = vec![G1Projective::identity(); num_buckets];
    let mut bucket_adds = 0u64;
    for (limbs, point) in scalar_limbs.iter().zip(points.iter()) {
        let idx = extract_window(limbs, window * w, w);
        if idx != 0 {
            buckets[idx - 1] = buckets[idx - 1].add_affine(point);
            bucket_adds += 1;
        }
    }
    let (window_sum, agg_adds) = aggregate_buckets(&buckets, aggregation);
    (window_sum, bucket_adds, agg_adds)
}

fn msm_impl(
    backend: &dyn Backend,
    points: PointSource<'_>,
    scalars: &[Fr],
    config: MsmConfig,
) -> (G1Projective, MsmStats) {
    let point_slice = points.as_slice();
    assert_eq!(point_slice.len(), scalars.len(), "length mismatch");
    let mut stats = MsmStats::default();
    if point_slice.is_empty() {
        return (G1Projective::identity(), stats);
    }
    let w = if config.window_bits == 0 {
        auto_window_bits(point_slice.len())
    } else {
        config.window_bits
    };
    assert!((1..=16).contains(&w), "window size out of range");

    let scalar_limbs: Vec<[u64; 4]> = scalars.iter().map(|s| s.to_canonical_limbs()).collect();
    let num_bits = Fr::NUM_BITS as usize;
    let num_windows = num_bits.div_ceil(w);
    let num_buckets = (1usize << w) - 1;

    // Each window's bucket accumulation and aggregation is independent of
    // every other window, so the windows fan out over the backend's workers
    // (the serial combine below consumes them in window order, so results
    // and operation counts are bit-identical to a serial run; with one
    // thread this is exactly the serial schedule). Workers measure their
    // thread-local modmul delta, rewind it, and hand it back so the
    // profiling counters see the same totals at any thread count. MSMs
    // below PAR_MIN_POINTS (the tail of the halving-MSM sequence, tiny
    // commits) stay on the calling thread: fan-out overhead would dwarf the
    // microseconds of useful work per window.
    const PAR_MIN_POINTS: usize = 256;
    let parallel = point_slice.len() >= PAR_MIN_POINTS && backend.threads() > 1 && num_windows > 1;
    let window_sums: Vec<(G1Projective, u64, u64, zkspeed_field::ModmulCount)> = if parallel {
        let shared_points = points.to_shared();
        let shared_limbs = Arc::new(scalar_limbs);
        let aggregation = config.aggregation;
        pool::map_indices_on(backend, num_windows, move |window| {
            let (out, muls) = zkspeed_field::measure_modmuls(|| {
                window_contribution(
                    &shared_points,
                    &shared_limbs,
                    window,
                    w,
                    num_buckets,
                    aggregation,
                )
            });
            (out.0, out.1, out.2, muls)
        })
    } else {
        (0..num_windows)
            .map(|window| {
                let (out, muls) = zkspeed_field::measure_modmuls(|| {
                    window_contribution(
                        point_slice,
                        &scalar_limbs,
                        window,
                        w,
                        num_buckets,
                        config.aggregation,
                    )
                });
                (out.0, out.1, out.2, muls)
            })
            .collect()
    };

    let mut acc = G1Projective::identity();
    for (window, &(window_sum, bucket_adds, agg_adds, muls)) in window_sums.iter().enumerate().rev()
    {
        if window != num_windows - 1 {
            for _ in 0..w {
                acc = acc.double();
                stats.doublings += 1;
            }
        }
        stats.bucket_adds += bucket_adds;
        stats.aggregation_adds += agg_adds;
        zkspeed_field::add_modmul_count(muls);
        acc += window_sum;
        stats.combine_adds += 1;
    }
    (acc, stats)
}

/// Aggregates bucket sums into `Σ (i+1)·buckets[i]`, returning the total and
/// the number of point additions used.
pub fn aggregate_buckets(buckets: &[G1Projective], schedule: Aggregation) -> (G1Projective, u64) {
    match schedule {
        Aggregation::Serial => aggregate_serial(buckets),
        Aggregation::Grouped { group_size } => aggregate_grouped(buckets, group_size),
    }
}

fn aggregate_serial(buckets: &[G1Projective]) -> (G1Projective, u64) {
    // Classic running-sum trick, highest bucket first:
    //   running += B_i; total += running
    let mut running = G1Projective::identity();
    let mut total = G1Projective::identity();
    let mut adds = 0u64;
    for b in buckets.iter().rev() {
        running += *b;
        total += running;
        adds += 2;
    }
    (total, adds)
}

fn aggregate_grouped(buckets: &[G1Projective], group_size: usize) -> (G1Projective, u64) {
    assert!(group_size > 0, "group_size must be positive");
    if buckets.is_empty() {
        return (G1Projective::identity(), 0);
    }
    // Write Σ_{i=1}^{M} i·B_i with i = g·s + j (j = 1..s within group g):
    //   Σ_g [ Σ_j j·B_{g·s+j} ]  +  s · Σ_g g·( Σ_j B_{g·s+j} )
    // Each group's inner running sum is independent (parallel in hardware);
    // the cross-group term is itself a small running sum over group totals.
    let s = group_size;
    let mut adds = 0u64;
    let num_groups = buckets.len().div_ceil(s);
    let mut inner_weighted = Vec::with_capacity(num_groups); // Σ_j j·B within group
    let mut group_totals = Vec::with_capacity(num_groups); // Σ_j B within group
    for g in 0..num_groups {
        let chunk = &buckets[g * s..((g + 1) * s).min(buckets.len())];
        let mut running = G1Projective::identity();
        let mut weighted = G1Projective::identity();
        // Highest j first so the running sum accumulates the right weights.
        for b in chunk.iter().rev() {
            running += *b;
            weighted += running;
            adds += 2;
        }
        inner_weighted.push(weighted);
        group_totals.push(running);
    }
    // Cross-group term: s · Σ_g g·T_g, computed with a running sum over
    // groups from the highest index down to group 1 (group 0 contributes 0).
    let mut running = G1Projective::identity();
    let mut cross = G1Projective::identity();
    for t in group_totals.iter().skip(1).rev() {
        running += *t;
        cross += running;
        adds += 2;
    }
    // Multiply the cross-group sum by s via double-and-add (s is tiny).
    let mut s_times_cross = G1Projective::identity();
    let mut bit = usize::BITS - s.leading_zeros();
    while bit > 0 {
        bit -= 1;
        s_times_cross = s_times_cross.double();
        if (s >> bit) & 1 == 1 {
            s_times_cross += cross;
            adds += 1;
        }
    }
    let mut total = G1Projective::identity();
    for wsum in inner_weighted.iter() {
        total += *wsum;
        adds += 1;
    }
    total += s_times_cross;
    adds += 1;
    (total, adds)
}

/// Computes a Sparse MSM as in the Witness Commit step: points whose scalar
/// is exactly 0 are skipped, points whose scalar is exactly 1 are summed with
/// a tree reduction, and the remaining dense scalars go through Pippenger.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sparse_msm(points: &[G1Affine], scalars: &[Fr]) -> (G1Projective, SparseMsmStats) {
    sparse_msm_on(&pool::Ambient, points, scalars)
}

/// [`sparse_msm`] on an explicit execution backend.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sparse_msm_on(
    backend: &dyn Backend,
    points: &[G1Affine],
    scalars: &[Fr],
) -> (G1Projective, SparseMsmStats) {
    assert_eq!(points.len(), scalars.len(), "length mismatch");
    let one = Fr::one();
    let zero = Fr::zero();
    let mut ones_points = Vec::new();
    let mut dense_points = Vec::new();
    let mut dense_scalars = Vec::new();
    let mut stats = SparseMsmStats::default();
    for (p, s) in points.iter().zip(scalars.iter()) {
        if *s == zero {
            stats.zeros += 1;
        } else if *s == one {
            stats.ones += 1;
            ones_points.push(p.to_projective());
        } else {
            stats.dense += 1;
            dense_points.push(*p);
            dense_scalars.push(*s);
        }
    }
    // Tree reduction of the 1-valued points (maps to the pipelined PADD tree
    // in the MSM unit's sparse mode).
    let (ones_sum, tree_adds) = tree_sum(&ones_points);
    stats.ops.combine_adds += tree_adds;

    let (dense_sum, dense_stats) = msm_impl(
        backend,
        PointSource::Shared(&Arc::new(dense_points)),
        &dense_scalars,
        MsmConfig::default(),
    );
    stats.ops.merge(&dense_stats);
    let total = ones_sum + dense_sum;
    stats.ops.combine_adds += 1;
    (total, stats)
}

/// Sums a slice of points with a binary-tree reduction, returning the sum and
/// the number of point additions.
pub fn tree_sum(points: &[G1Projective]) -> (G1Projective, u64) {
    if points.is_empty() {
        return (G1Projective::identity(), 0);
    }
    let mut layer: Vec<G1Projective> = points.to_vec();
    let mut adds = 0u64;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for chunk in layer.chunks(2) {
            if chunk.len() == 2 {
                next.push(chunk[0] + chunk[1]);
                adds += 1;
            } else {
                next.push(chunk[0]);
            }
        }
        layer = next;
    }
    (layer[0], adds)
}

/// Extracts `width` bits starting at bit offset `offset` from a canonical
/// 4-limb scalar.
fn extract_window(limbs: &[u64; 4], offset: usize, width: usize) -> usize {
    if offset >= 256 {
        return 0;
    }
    let limb_idx = offset / 64;
    let bit_idx = offset % 64;
    let mut value = limbs[limb_idx] >> bit_idx;
    if bit_idx + width > 64 && limb_idx + 1 < 4 {
        value |= limbs[limb_idx + 1] << (64 - bit_idx);
    }
    (value & ((1u64 << width) - 1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkspeed_rt::rngs::StdRng;
    use zkspeed_rt::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed_0004)
    }

    fn random_points(n: usize, rng: &mut StdRng) -> Vec<G1Affine> {
        let proj: Vec<G1Projective> = (0..n).map(|_| G1Projective::random(rng)).collect();
        G1Projective::batch_to_affine(&proj)
    }

    #[test]
    fn empty_msm_is_identity() {
        assert_eq!(msm(&[], &[]), G1Projective::identity());
        let (r, s) = sparse_msm(&[], &[]);
        assert_eq!(r, G1Projective::identity());
        assert_eq!(s.zeros + s.ones + s.dense, 0);
    }

    #[test]
    fn pippenger_matches_naive_small() {
        let mut r = rng();
        for n in [1usize, 2, 3, 7, 16, 33] {
            let points = random_points(n, &mut r);
            let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut r)).collect();
            let expect = naive_msm(&points, &scalars);
            assert_eq!(msm(&points, &scalars), expect, "n = {n}");
        }
    }

    #[test]
    fn pippenger_matches_naive_across_windows_and_schedules() {
        let mut r = rng();
        let n = 40;
        let points = random_points(n, &mut r);
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut r)).collect();
        let expect = naive_msm(&points, &scalars);
        for w in [2usize, 4, 7, 8, 9, 10, 13] {
            for agg in [
                Aggregation::Serial,
                Aggregation::Grouped { group_size: 16 },
                Aggregation::Grouped { group_size: 3 },
                Aggregation::Grouped { group_size: 1 },
            ] {
                let cfg = MsmConfig {
                    window_bits: w,
                    aggregation: agg,
                };
                let (res, stats) = msm_with_config(&points, &scalars, cfg);
                assert_eq!(res, expect, "w = {w}, agg = {agg:?}");
                assert!(stats.total_adds() > 0);
                assert!(stats.fq_muls() > 0);
            }
        }
    }

    #[test]
    fn special_scalars() {
        let mut r = rng();
        let points = random_points(5, &mut r);
        // All zeros.
        let zeros = vec![Fr::zero(); 5];
        assert_eq!(msm(&points, &zeros), G1Projective::identity());
        // All ones: MSM equals the plain sum.
        let ones = vec![Fr::one(); 5];
        let sum: G1Projective = points.iter().map(|p| p.to_projective()).sum();
        assert_eq!(msm(&points, &ones), sum);
        // Scalar with every window populated (r - 1).
        let big = vec![-Fr::one(); 5];
        assert_eq!(msm(&points, &big), naive_msm(&points, &big));
    }

    #[test]
    fn sparse_msm_matches_dense_reference() {
        let mut r = rng();
        let n = 64;
        let points = random_points(n, &mut r);
        // 45% zeros, 45% ones, 10% dense — the paper's witness statistics.
        let mut scalars: Vec<Fr> = Vec::with_capacity(n);
        for _ in 0..n {
            let roll: f64 = r.gen();
            let s = if roll < 0.45 {
                Fr::zero()
            } else if roll < 0.90 {
                Fr::one()
            } else {
                Fr::random(&mut r)
            };
            scalars.push(s);
        }
        let expect = naive_msm(&points, &scalars);
        let (result, stats) = sparse_msm(&points, &scalars);
        assert_eq!(result, expect);
        assert_eq!(stats.zeros + stats.ones + stats.dense, n);
        assert!(stats.ones > 0);
        assert!(stats.zeros > 0);
    }

    #[test]
    fn aggregation_schedules_agree() {
        let mut r = rng();
        let buckets: Vec<G1Projective> = (0..31).map(|_| G1Projective::random(&mut r)).collect();
        let (serial, serial_adds) = aggregate_buckets(&buckets, Aggregation::Serial);
        for gs in [1usize, 2, 4, 8, 16, 31, 64] {
            let (grouped, _) = aggregate_buckets(&buckets, Aggregation::Grouped { group_size: gs });
            assert_eq!(grouped, serial, "group_size = {gs}");
        }
        assert_eq!(serial_adds, 2 * 31);
    }

    #[test]
    fn aggregation_weights_are_correct() {
        // Buckets holding i·G should aggregate to Σ i²·G.
        let g = G1Projective::generator();
        let buckets: Vec<G1Projective> = (1..=10u64)
            .map(|i| g.mul_scalar(&Fr::from_u64(i)))
            .collect();
        let expect = g.mul_scalar(&Fr::from_u64((1..=10u64).map(|i| i * i).sum()));
        let (serial, _) = aggregate_buckets(&buckets, Aggregation::Serial);
        let (grouped, _) = aggregate_buckets(&buckets, Aggregation::Grouped { group_size: 4 });
        assert_eq!(serial, expect);
        assert_eq!(grouped, expect);
    }

    #[test]
    fn tree_sum_matches_linear_sum() {
        let mut r = rng();
        for n in [0usize, 1, 2, 5, 16, 17] {
            let points: Vec<G1Projective> = (0..n).map(|_| G1Projective::random(&mut r)).collect();
            let linear: G1Projective = points.iter().copied().sum();
            let (tree, adds) = tree_sum(&points);
            assert_eq!(tree, linear, "n = {n}");
            assert_eq!(adds, n.saturating_sub(1) as u64);
        }
    }

    #[test]
    fn window_extraction() {
        let limbs = [0xffff_ffff_ffff_ffffu64, 0x1, 0, 0];
        assert_eq!(extract_window(&limbs, 0, 8), 0xff);
        assert_eq!(extract_window(&limbs, 60, 8), 0x1f);
        assert_eq!(extract_window(&limbs, 64, 8), 0x01);
        assert_eq!(extract_window(&limbs, 300, 8), 0);
    }

    #[test]
    fn auto_window_is_in_explored_range() {
        assert!(auto_window_bits(16) <= 10);
        for n in [1usize << 10, 1 << 16, 1 << 20] {
            let w = auto_window_bits(n);
            assert!((7..=10).contains(&w), "n = {n}, w = {w}");
        }
    }
}
