//! BLS12-381 G1 group arithmetic and multi-scalar multiplication for the
//! zkSpeed HyperPlonk reproduction.
//!
//! HyperPlonk commits to every MLE table with an MSM over BLS12-381 G1, and
//! the zkSpeed paper identifies these MSMs as the single largest consumer of
//! compute (Table 1) and of chip area (64.6% of compute area in the
//! highlighted design). This crate provides the functional counterpart of
//! that MSM unit:
//!
//! * [`G1Affine`] / [`G1Projective`] — the group, with complete full and
//!   mixed addition formulas (the PADD datapath);
//! * [`msm`] / [`msm_with_config`] — Pippenger's algorithm with configurable
//!   window size, signed-digit recoding, SZKP-style intra-window chunking,
//!   batch-affine bucket accumulation, and either the SZKP serial or the
//!   zkSpeed grouped bucket aggregation schedule (Fig. 5 of the paper) —
//!   see [`MsmConfig`] and [`MsmSchedule`];
//! * [`sparse_msm`] — the Sparse MSM used by the Witness Commit step;
//! * [`MsmStats`] — per-addition-kind operation counters consumed by the
//!   hardware cost model.
//!
//! # Examples
//!
//! ```
//! use zkspeed_curve::{msm, G1Affine, G1Projective};
//! use zkspeed_field::{Field, Fr};
//! use zkspeed_rt::rngs::StdRng;
//! use zkspeed_rt::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let points: Vec<G1Affine> = (0..8)
//!     .map(|_| G1Projective::random(&mut rng).to_affine())
//!     .collect();
//! let scalars: Vec<Fr> = (0..8).map(|_| Fr::random(&mut rng)).collect();
//! let commitment = msm(&points, &scalars);
//! assert!(commitment.is_on_curve());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fixed_base;
mod g1;
mod msm;
mod multi_base;

pub use fixed_base::{FixedBaseTable, FIXED_BASE_DEFAULT_WINDOW_BITS};
pub use g1::{
    G1Affine, G1Projective, BATCH_AFFINE_ADD_FQ_MULS, G1_ENCODED_BYTES, PADD_FQ_MULS,
    PADD_MIXED_FQ_MULS, PDBL_FQ_MULS,
};
pub use msm::{
    aggregate_buckets, auto_intra_window_chunks, auto_window_bits, msm, msm_precomputed_on,
    msm_with_config, msm_with_config_on, msm_with_config_shared, naive_msm, sparse_msm,
    sparse_msm_on, sparse_msm_precomputed_on, sparse_msm_with_config_on, tree_sum, Aggregation,
    MsmConfig, MsmSchedule, MsmStats, SparseMsmStats, BATCH_AFFINE_DEFAULT_MIN_POINTS,
};
pub use multi_base::{MultiBaseTable, MULTI_BASE_DEFAULT_WINDOW_BITS};
