//! Precomputed shifted-base window tables over a whole fixed point vector.
//!
//! A proving session commits against the *same* SRS Lagrange basis for every
//! witness, so the Pippenger window doublings repeated by each commit are
//! pure waste: with the shifted multiples `2^{w·j}·Bᵢ` of every base point
//! precomputed once, `Σ sᵢ·Bᵢ` decomposes into the flat signed-digit bucket
//! problem `Σᵢ Σⱼ d_{i,j}·T_{i,j}` — one bucket set of `2^{w−1}` entries,
//! a single aggregation pass, and **zero doublings** per MSM (compare
//! [`crate::FixedBaseTable`], which plays the same trick for one base in
//! `Srs` setup). The [`MsmSchedule::Precomputed`](crate::MsmSchedule)
//! engine in [`crate::msm_precomputed_on`] consumes these tables.
//!
//! The table stores only the `⌈255/w⌉ + 1` shifted bases per point (the
//! extra window absorbs the signed-recoding carry), not per-digit
//! multiples, so memory stays `O(n·⌈255/w⌉)` points — about 10 MB at
//! `n = 2^12` with the default 12-bit windows — and the one-time build is
//! `~255` doublings per base plus one shared batch inversion per chunk.

use std::sync::Arc;

use zkspeed_field::Fr;
use zkspeed_rt::pool::{self, Backend};

use crate::g1::{G1Affine, G1Projective};

/// Default window width for multi-base tables. Wider than the Pippenger
/// auto-window (7–10 bits) because the per-window aggregation pass that
/// normally punishes wide windows is gone: the precomputed engine runs one
/// aggregation over `2^{w−1}` buckets for the *whole* MSM, so the fill
/// work `n·⌈255/w⌉` dominates and wider windows keep winning until the
/// single aggregation (`2·2^{w−1}` adds) catches up around `w ≈ 12` for
/// session-sized `n`.
pub const MULTI_BASE_DEFAULT_WINDOW_BITS: usize = 12;

/// Precomputed shifted-base window table over a fixed point vector:
/// `entry(i, j) = 2^{w·j}·Bᵢ` for every base `i` and window `j`.
///
/// Built once per session with [`MultiBaseTable::build_on`] (chunked across
/// the backend, one batch inversion per chunk) and shared via `Arc` like
/// the bases themselves; consumed by [`crate::msm_precomputed_on`] /
/// [`crate::sparse_msm_precomputed_on`].
#[derive(Clone, Debug)]
pub struct MultiBaseTable {
    window_bits: usize,
    num_windows: usize,
    num_bases: usize,
    /// Row-major: `entries[i·num_windows + j] = 2^{w·j}·Bᵢ`.
    entries: Vec<G1Affine>,
}

impl MultiBaseTable {
    /// Precomputes the shifted-base table for `bases` with `window_bits`-wide
    /// windows, fanning the per-base doubling chains out across the backend
    /// (each chunk shares one batch inversion; results and modmul counters
    /// are identical at any thread count).
    ///
    /// # Panics
    ///
    /// Panics if `window_bits` is 0 or greater than 16.
    pub fn build_on(bases: &Arc<Vec<G1Affine>>, window_bits: usize, backend: &dyn Backend) -> Self {
        assert!(
            (1..=16).contains(&window_bits),
            "multi-base window bits must be in 1..=16"
        );
        // One extra window absorbs the signed-digit recoding carry, exactly
        // mirroring the signed Pippenger window count.
        let num_windows = (Fr::NUM_BITS as usize).div_ceil(window_bits) + 1;
        let num_bases = bases.len();
        // ≥ 32 bases per chunk keep the per-chunk batch-inversion overhead
        // amortized (the same floor Srs setup uses).
        const MIN_CHUNK: usize = 32;
        let job_bases = Arc::clone(bases);
        let chunks = pool::map_ranges(backend, num_bases, MIN_CHUNK, move |range| {
            zkspeed_field::measure_modmuls(|| {
                let mut shifted = Vec::with_capacity(range.len() * num_windows);
                for i in range {
                    let mut acc = job_bases[i].to_projective();
                    for _ in 0..num_windows {
                        shifted.push(acc);
                        for _ in 0..window_bits {
                            acc = acc.double();
                        }
                    }
                }
                G1Projective::batch_to_affine(&shifted)
            })
        });
        let mut entries = Vec::with_capacity(num_bases * num_windows);
        for (chunk, muls) in chunks {
            zkspeed_field::add_modmul_count(muls);
            entries.extend(chunk);
        }
        Self {
            window_bits,
            num_windows,
            num_bases,
            entries,
        }
    }

    /// [`MultiBaseTable::build_on`] on the ambient backend.
    ///
    /// # Panics
    ///
    /// Panics if `window_bits` is 0 or greater than 16.
    pub fn build(bases: &[G1Affine], window_bits: usize) -> Self {
        Self::build_on(&Arc::new(bases.to_vec()), window_bits, &pool::Ambient)
    }

    /// The window width in bits.
    pub fn window_bits(&self) -> usize {
        self.window_bits
    }

    /// Number of windows per base (`⌈255/w⌉ + 1`; the top window absorbs the
    /// signed-recoding carry).
    pub fn num_windows(&self) -> usize {
        self.num_windows
    }

    /// Number of base points covered.
    pub fn num_bases(&self) -> usize {
        self.num_bases
    }

    /// The precomputed shifted base `2^{w·j}·Bᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `base` or `window` is out of range.
    pub fn entry(&self, base: usize, window: usize) -> &G1Affine {
        assert!(base < self.num_bases && window < self.num_windows);
        &self.entries[base * self.num_windows + window]
    }

    /// The original base point `Bᵢ` (window 0's entry).
    ///
    /// # Panics
    ///
    /// Panics if `base` is out of range.
    pub fn base(&self, base: usize) -> &G1Affine {
        self.entry(base, 0)
    }

    /// Total number of precomputed affine points.
    pub fn size_in_points(&self) -> usize {
        self.entries.len()
    }

    /// In-memory size of the precomputed entries in bytes.
    pub fn size_in_bytes(&self) -> usize {
        self.entries.len() * core::mem::size_of::<G1Affine>()
    }

    /// Number of points a table over `num_bases` bases with `window_bits`-bit
    /// windows would hold — the memory planning formula
    /// `(⌈255/w⌉ + 1) · n`, usable without building anything.
    pub fn planned_points(num_bases: usize, window_bits: usize) -> usize {
        ((Fr::NUM_BITS as usize).div_ceil(window_bits) + 1) * num_bases
    }

    /// In-memory size in bytes of a planned table (see
    /// [`MultiBaseTable::planned_points`]).
    pub fn planned_bytes(num_bases: usize, window_bits: usize) -> usize {
        Self::planned_points(num_bases, window_bits) * core::mem::size_of::<G1Affine>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkspeed_rt::pool::{Serial, ThreadPool};
    use zkspeed_rt::rngs::StdRng;
    use zkspeed_rt::SeedableRng;

    fn random_bases(n: usize, rng: &mut StdRng) -> Arc<Vec<G1Affine>> {
        let proj: Vec<G1Projective> = (0..n).map(|_| G1Projective::random(rng)).collect();
        Arc::new(G1Projective::batch_to_affine(&proj))
    }

    #[test]
    fn entries_are_shifted_bases() {
        let mut rng = StdRng::seed_from_u64(0x3u64);
        let bases = random_bases(3, &mut rng);
        for w in [1usize, 5, 12] {
            let table = MultiBaseTable::build_on(&bases, w, &Serial);
            assert_eq!(table.window_bits(), w);
            assert_eq!(table.num_bases(), 3);
            assert_eq!(table.num_windows(), (Fr::NUM_BITS as usize).div_ceil(w) + 1);
            for (i, base) in bases.iter().enumerate() {
                assert_eq!(table.base(i), base, "w = {w}, base {i}");
                let mut expect = base.to_projective();
                for j in 0..table.num_windows() {
                    assert_eq!(
                        table.entry(i, j).to_projective(),
                        expect,
                        "w = {w}, base {i}, window {j}"
                    );
                    for _ in 0..w {
                        expect = expect.double();
                    }
                }
            }
        }
    }

    #[test]
    fn build_is_backend_invariant() {
        let mut rng = StdRng::seed_from_u64(0x7u64);
        // Enough bases that map_ranges genuinely splits into chunks.
        let bases = random_bases(80, &mut rng);
        let serial = MultiBaseTable::build_on(&bases, 10, &Serial);
        let pooled = MultiBaseTable::build_on(&bases, 10, &ThreadPool::new(8));
        assert_eq!(serial.entries, pooled.entries);
    }

    #[test]
    fn size_accounting_matches_plan() {
        let mut rng = StdRng::seed_from_u64(0xbu64);
        let bases = random_bases(7, &mut rng);
        let table = MultiBaseTable::build_on(&bases, 12, &Serial);
        assert_eq!(
            table.size_in_points(),
            MultiBaseTable::planned_points(7, 12)
        );
        assert_eq!(table.size_in_bytes(), MultiBaseTable::planned_bytes(7, 12));
        // 255-bit scalars with 12-bit windows: 22 windows + 1 carry window.
        assert_eq!(table.num_windows(), 23);
    }

    #[test]
    #[should_panic(expected = "window bits")]
    fn zero_window_bits_rejected() {
        let _ = MultiBaseTable::build(&[], 0);
    }
}
