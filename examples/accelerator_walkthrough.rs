//! Walk through what each zkSpeed unit does for one proof: functional result
//! first (on a small instance), then the hardware model's view of the same
//! kernel at paper scale.
//!
//! Run with: `cargo run --release --example accelerator_walkthrough`

use zkspeed_core::{ChipConfig, Unit, Workload};
use zkspeed_field::Fr;
use zkspeed_hw::params::CLOCK_HZ;
use zkspeed_poly::{fraction_mle, product_mle, MultilinearPoly};
use zkspeed_rt::rngs::StdRng;
use zkspeed_rt::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let mu_small = 6;

    println!("== Functional kernels (2^{mu_small} entries) ==");
    // Build MLE (Multifunction Tree, forward mode).
    let challenges: Vec<Fr> = (0..mu_small).map(|_| Fr::random(&mut rng)).collect();
    let eq = MultilinearPoly::eq_mle(&challenges);
    println!(
        "Build MLE: eq table sums to one over the hypercube: {}",
        eq.sum_over_hypercube() == Fr::one()
    );

    // FracMLE + Product MLE (Wiring Identity).
    let numerator = MultilinearPoly::random(mu_small, &mut rng);
    let denominator = MultilinearPoly::from_fn(mu_small, |i| Fr::from_u64(i as u64 + 1));
    let phi = fraction_mle(&numerator, &denominator);
    let pi = product_mle(&phi);
    println!(
        "FracMLE/ProdMLE: grand product reconstructed at index 2^mu-2: {}",
        pi[(1 << mu_small) - 2] == phi.evaluations().iter().copied().product::<Fr>()
    );

    println!("\n== Hardware model at 2^20 gates (Table 5 design, 2 TB/s) ==");
    let chip = ChipConfig::table5_design();
    let workload = Workload::standard(20);
    let sim = chip.simulate(&workload);
    let util = sim.utilization();
    println!(
        "total latency: {:.2} ms at {:.1} GHz",
        sim.total_seconds() * 1e3,
        CLOCK_HZ / 1e9
    );
    println!("{:<22} {:>12} {:>12}", "Unit", "Busy (ms)", "Utilization");
    for (i, unit) in Unit::ALL.iter().enumerate() {
        println!(
            "{:<22} {:>12.3} {:>11.1}%",
            unit.name(),
            sim.busy[i] * 1e3,
            util[i] * 100.0
        );
    }
    let area = chip.area();
    println!(
        "\nchip: {:.0} mm^2 total ({:.0} compute, {:.0} SRAM, {:.0} HBM PHY), {:.0} W average",
        area.total_mm2(),
        area.compute_mm2(),
        area.sram,
        area.hbm_phy,
        chip.power().total_w()
    );
}
