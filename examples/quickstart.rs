//! Quickstart: build a small circuit, run the universal setup, prove it with
//! HyperPlonk, verify the proof, and estimate what the zkSpeed accelerator
//! would do with the same workload.
//!
//! Run with: `cargo run --release --example quickstart`

use zkspeed_core::{ChipConfig, CpuModel, Workload};
use zkspeed_field::Fr;
use zkspeed_hyperplonk::{preprocess, prove_with_report, verify, CircuitBuilder};
use zkspeed_pcs::Srs;
use zkspeed_rt::rngs::StdRng;
use zkspeed_rt::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Express a statement as a circuit: "I know x such that x^3 + x + 5 = 35".
    let mut builder = CircuitBuilder::new();
    let x = builder.input(Fr::from_u64(3)); // the secret witness
    let x2 = builder.mul(x, x);
    let x3 = builder.mul(x2, x);
    let t = builder.add(x3, x);
    let five = builder.constant(Fr::from_u64(5));
    let lhs = builder.add(t, five);
    let target = builder.constant(Fr::from_u64(35));
    builder.assert_equal(lhs, target);
    let (circuit, witness) = builder.build();
    println!(
        "circuit: 2^{} = {} gates",
        circuit.num_vars(),
        circuit.num_gates()
    );

    // 2. Universal setup + per-circuit preprocessing.
    let mut rng = StdRng::seed_from_u64(42);
    let srs = Srs::setup(circuit.num_vars(), &mut rng);
    let (pk, vk) = preprocess(circuit, &srs);

    // 3. Prove and verify.
    let (proof, report) = prove_with_report(&pk, &witness)?;
    verify(&vk, &proof)?;
    println!("proof verified; size ≈ {} bytes", proof.size_in_bytes());
    println!("prover wall-clock: {:.3} ms", report.total_seconds() * 1e3);

    // 4. What would zkSpeed do with a realistic problem size?
    let chip = ChipConfig::table5_design();
    let workload = Workload::standard(20);
    let sim = chip.simulate(&workload);
    println!(
        "zkSpeed model @ 2^20 gates: {:.2} ms on a {:.0} mm^2 chip ({}x faster than the paper's CPU baseline)",
        sim.total_seconds() * 1e3,
        chip.area().total_mm2(),
        (CpuModel::total_seconds(20) / sim.total_seconds()).round()
    );
    Ok(())
}
