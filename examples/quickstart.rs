//! Quickstart: build a small circuit, run the universal setup, prove it with
//! HyperPlonk, verify the proof, and estimate what the zkSpeed accelerator
//! would do with the same workload.
//!
//! Run with: `cargo run --release --example quickstart`

use zkspeed::prelude::*;
use zkspeed_core::{ChipConfig, CpuModel, Workload};
use zkspeed_field::Fr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Express a statement as a circuit: "I know x such that x^3 + x + 5 = 35".
    let mut builder = CircuitBuilder::new();
    let x = builder.input(Fr::from_u64(3)); // the secret witness
    let x2 = builder.mul(x, x);
    let x3 = builder.mul(x2, x);
    let t = builder.add(x3, x);
    let five = builder.constant(Fr::from_u64(5));
    let lhs = builder.add(t, five);
    let target = builder.constant(Fr::from_u64(35));
    builder.assert_equal(lhs, target);
    let (circuit, witness) = builder.build();
    println!(
        "circuit: 2^{} = {} gates",
        circuit.num_vars(),
        circuit.num_gates()
    );

    // 2. One session owns the universal setup and the worker pool; a
    //    preprocessing pass per circuit yields long-lived handles.
    let mut rng = StdRng::seed_from_u64(42);
    let srs = Srs::try_setup(circuit.num_vars(), &mut rng)?;
    let system = ProofSystem::setup(srs);
    let (prover, verifier) = system.preprocess(circuit)?;

    // 3. Prove, ship as canonical bytes, verify.
    let (proof, report) = prover.prove_with_report(&witness)?;
    let bytes = proof.to_bytes();
    verifier.verify(&Proof::from_bytes(&bytes)?)?;
    println!(
        "proof verified; {} canonical bytes (backend: {})",
        bytes.len(),
        prover.backend().name()
    );
    println!("prover wall-clock: {:.3} ms", report.total_seconds() * 1e3);

    // 4. What would zkSpeed do with a realistic problem size?
    let chip = ChipConfig::table5_design();
    let workload = Workload::standard(20);
    let sim = chip.simulate(&workload);
    println!(
        "zkSpeed model @ 2^20 gates: {:.2} ms on a {:.0} mm^2 chip ({}x faster than the paper's CPU baseline)",
        sim.total_seconds() * 1e3,
        chip.area().total_mm2(),
        (CpuModel::total_seconds(20) / sim.total_seconds()).round()
    );
    Ok(())
}
