//! Run a reduced design-space exploration (the Figure 9 flow) on a
//! **measured** workload: build one of the real circuit workloads, extract
//! its witness statistics with `CircuitStats`, project them to the target
//! problem size and explore the Table 2 design space — instead of assuming
//! the paper's 45/45/10 split. Prints the global Pareto frontier plus the
//! design the paper highlights in Table 5.
//!
//! Run with:
//! `cargo run --release --example design_space_exploration [mu] [workload]`
//! where `workload` is `hash-chain`, `merkle`, `state-transition` or
//! `standard` (the paper's assumed split).

use zkspeed::prelude::*;
use zkspeed_core::{explore, pareto_frontier, ChipConfig, DesignSpace, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_vars: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let which = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "hash-chain".into());

    // Fractions are measured on a small compiled instance (building a
    // circuit and witness is cheap; no proving happens here) and projected
    // to the target size.
    let mut rng = StdRng::seed_from_u64(2);
    let workload = if which == "standard" {
        println!("using the paper's assumed 45/45/10 split");
        Workload::standard(num_vars)
    } else {
        let spec = WorkloadSpec::test_suite()
            .into_iter()
            .find(|s| s.label() == which)
            .ok_or_else(|| format!("unknown workload '{which}'"))?;
        let (circuit, witness) = spec.build(&mut rng);
        let stats = CircuitStats::measure(&circuit, &witness);
        println!(
            "measured {} at 2^{}: {:.1}% zero / {:.1}% one / {:.1}% dense",
            spec.name(),
            stats.num_vars,
            stats.zero_fraction() * 100.0,
            stats.one_fraction() * 100.0,
            stats.dense_fraction() * 100.0
        );
        measured_workload(&stats)?.with_num_vars(num_vars)
    };
    println!("exploring the reduced Table 2 design space at 2^{num_vars} gates…");

    let space = DesignSpace::reduced();
    let points = explore(&space, &workload);
    let frontier = pareto_frontier(&points);
    println!(
        "{} designs evaluated, {} on the global Pareto frontier\n",
        points.len(),
        frontier.len()
    );
    println!(
        "{:>12} {:>12} {:>10} {:>9} {:>9} {:>11}",
        "Runtime(ms)", "Area(mm^2)", "BW(GB/s)", "MSM PEs", "SC PEs", "UpdatePEs"
    );
    for p in frontier.iter().take(20) {
        println!(
            "{:>12.3} {:>12.1} {:>10.0} {:>9} {:>9} {:>11}",
            p.runtime_seconds * 1e3,
            p.area_mm2,
            p.config.memory.bandwidth_gbps,
            p.config.msm.total_pes(),
            p.config.sumcheck.pes,
            p.config.mle_update.pes
        );
    }

    let table5 = ChipConfig::table5_design().with_max_num_vars(num_vars);
    let sim = table5.simulate(&workload);
    println!(
        "\nthe paper's highlighted design: {:.1} mm^2, {:.3} ms at 2^{num_vars} gates",
        table5.area().total_mm2(),
        sim.total_seconds() * 1e3
    );
    Ok(())
}
