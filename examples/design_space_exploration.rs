//! Run a reduced design-space exploration (the Figure 9 flow) and print the
//! global Pareto frontier plus the design the paper highlights in Table 5.
//!
//! Run with: `cargo run --release --example design_space_exploration [mu]`

use zkspeed_core::{explore, pareto_frontier, ChipConfig, DesignSpace, Workload};

fn main() {
    let num_vars: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let workload = Workload::standard(num_vars);
    println!("exploring the reduced Table 2 design space at 2^{num_vars} gates…");

    let space = DesignSpace::reduced();
    let points = explore(&space, &workload);
    let frontier = pareto_frontier(&points);
    println!(
        "{} designs evaluated, {} on the global Pareto frontier\n",
        points.len(),
        frontier.len()
    );
    println!(
        "{:>12} {:>12} {:>10} {:>9} {:>9} {:>11}",
        "Runtime(ms)", "Area(mm^2)", "BW(GB/s)", "MSM PEs", "SC PEs", "UpdatePEs"
    );
    for p in frontier.iter().take(20) {
        println!(
            "{:>12.3} {:>12.1} {:>10.0} {:>9} {:>9} {:>11}",
            p.runtime_seconds * 1e3,
            p.area_mm2,
            p.config.memory.bandwidth_gbps,
            p.config.msm.total_pes(),
            p.config.sumcheck.pes,
            p.config.mle_update.pes
        );
    }

    let table5 = ChipConfig::table5_design().with_max_num_vars(num_vars);
    let sim = table5.simulate(&workload);
    println!(
        "\nthe paper's highlighted design: {:.1} mm^2, {:.3} ms at 2^{num_vars} gates",
        table5.area().total_mm2(),
        sim.total_seconds() * 1e3
    );
}
