//! A rollup-flavoured workload: prove a batch of private "transactions",
//! each checking a balance update, then look at how the protocol steps and
//! kernels behave — the scenario the paper's Table 3 "Rollup of 10 Pvt Tx"
//! workload represents at scale.
//!
//! Run with: `cargo run --release --example private_transaction_rollup`

use zkspeed::prelude::*;
use zkspeed_core::{ChipConfig, CpuModel, Workload};
use zkspeed_field::Fr;
use zkspeed_hyperplonk::ProtocolStep;
use zkspeed_rt::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);

    // Each "transaction" proves: new_balance = old_balance - amount, and
    // amount * flag = amount (flag is 1, i.e. the transaction is authorized).
    let mut builder = CircuitBuilder::new();
    let num_tx = 16;
    for _ in 0..num_tx {
        let old_balance = builder.input(Fr::from_u64(rng.gen_range(1_000..1_000_000)));
        let amount = builder.input(Fr::from_u64(rng.gen_range(1..1_000)));
        let flag = builder.constant(Fr::from_u64(1));
        let authorized = builder.mul(amount, flag);
        builder.assert_equal(authorized, amount);
        let neg_amount = builder.mul_constant(amount, -Fr::from_u64(1));
        let new_balance = builder.add(old_balance, neg_amount);
        // Bind the declared new balance to the computed one.
        let declared = builder.input(builder.value_of(new_balance));
        builder.assert_equal(declared, new_balance);
    }
    let (circuit, witness) = builder.build();
    println!(
        "rollup of {num_tx} transactions -> 2^{} = {} gates, witness sparsity {:.0}%",
        circuit.num_vars(),
        circuit.num_gates(),
        witness.sparsity() * 100.0
    );

    let srs = Srs::try_setup(circuit.num_vars(), &mut rng)?;
    let system = ProofSystem::setup(srs);
    let (prover, verifier) = system.preprocess(circuit)?;
    let (proof, report) = prover.prove_with_report(&witness)?;
    verifier.verify(&proof)?;
    println!("proof verified ({} bytes)", proof.to_bytes().len());

    // A rollup operator proves many batches against the same keys: the
    // handle fans independent proofs out across the session's worker pool.
    let batch = prover.prove_batch(&[witness.clone(), witness.clone(), witness.clone()])?;
    println!(
        "batch of {} proofs on the '{}' backend, all bit-identical: {}",
        batch.len(),
        prover.backend().name(),
        batch.iter().all(|p| *p == proof)
    );

    println!("\nmeasured prover step breakdown (this machine):");
    for step in ProtocolStep::ALL {
        println!(
            "  {:<18} {:>8.3} ms",
            step.name(),
            report.seconds(step) * 1e3
        );
    }

    // The paper-scale equivalent: a 2^23-gate rollup on the zkSpeed chip.
    let chip = ChipConfig::table5_design().with_max_num_vars(20);
    let sim = chip.simulate(&Workload::standard(23));
    println!(
        "\nzkSpeed model for the paper's 2^23 rollup: {:.1} ms (CPU baseline: {:.1} s, speedup {:.0}x)",
        sim.total_seconds() * 1e3,
        CpuModel::total_seconds(23),
        CpuModel::total_seconds(23) / sim.total_seconds()
    );
    Ok(())
}
