//! A rollup workload: prove a batch of private balance transfers with the
//! state-transition circuit of the workload suite (authorization flags,
//! range-checked amounts/balances, conservation constraints), then compare
//! the measured witness statistics against the paper's 45/45/10 assumption
//! on the zkSpeed chip model — the scenario Table 3's "Rollup of 10 Pvt Tx"
//! workload represents at scale.
//!
//! Run with: `cargo run --release --example private_transaction_rollup`

use zkspeed::prelude::*;
use zkspeed_core::{ChipConfig, CpuModel, Workload};
use zkspeed_hyperplonk::workloads::state_transition_circuit;
use zkspeed_hyperplonk::ProtocolStep;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);

    let spec = StateTransitionSpec {
        transfers: 16,
        balance_bits: 32,
    };
    let (circuit, witness) = state_transition_circuit(&spec, &mut rng);
    let stats = CircuitStats::measure(&circuit, &witness);
    println!(
        "rollup of {} transfers -> 2^{} = {} gates, witness split {:.0}% zero / {:.0}% one / {:.0}% dense",
        spec.transfers,
        stats.num_vars,
        stats.num_gates,
        stats.zero_fraction() * 100.0,
        stats.one_fraction() * 100.0,
        stats.dense_fraction() * 100.0
    );

    let srs = Srs::try_setup(circuit.num_vars(), &mut rng)?;
    let system = ProofSystem::setup(srs);
    let (prover, verifier) = system.preprocess(circuit)?;
    let (proof, report) = prover.prove_with_report(&witness)?;
    verifier.verify(&proof)?;
    println!("proof verified ({} bytes)", proof.to_bytes().len());

    // A rollup operator proves many batches against the same keys: the
    // handle fans independent proofs out across the session's worker pool.
    let batch = prover.prove_batch(&[witness.clone(), witness.clone(), witness.clone()])?;
    println!(
        "batch of {} proofs on the '{}' backend, all bit-identical: {}",
        batch.len(),
        prover.backend().name(),
        batch.iter().all(|p| *p == proof)
    );

    println!("\nmeasured prover step breakdown (this machine):");
    for step in ProtocolStep::ALL {
        println!(
            "  {:<18} {:>8.3} ms",
            step.name(),
            report.seconds(step) * 1e3
        );
    }

    // Paper scale: the same measured witness statistics at 2^23 gates, next
    // to the paper's assumed split.
    let chip = ChipConfig::table5_design().with_max_num_vars(20);
    let measured = measured_workload(&stats)?.with_num_vars(23);
    let assumed = Workload::standard(23);
    let sim_measured = chip.simulate(&measured);
    let sim_assumed = chip.simulate(&assumed);
    println!(
        "\nzkSpeed model for a 2^23 rollup:\n  measured split: {:.1} ms   paper 45/45/10: {:.1} ms   (CPU baseline: {:.1} s, speedup {:.0}x)",
        sim_measured.total_seconds() * 1e3,
        sim_assumed.total_seconds() * 1e3,
        CpuModel::total_seconds(23),
        CpuModel::total_seconds(23) / sim_measured.total_seconds()
    );
    Ok(())
}
