//! The real-circuit workload suite end to end: build the hash-chain,
//! Merkle-membership and state-transition circuits, measure their actual
//! witness statistics, prove and verify each through the session API, and
//! compare the measured splits against the paper's 45/45/10 assumption on
//! the zkSpeed chip model.
//!
//! Run with: `cargo run --release --example workload_suite`

use std::time::Instant;

use zkspeed::prelude::*;
use zkspeed_core::{ChipConfig, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(5);
    let suite = WorkloadSpec::example_suite();

    // All suite circuits fit one μ = 15 setup.
    let t0 = Instant::now();
    let srs = Srs::try_setup(15, &mut rng)?;
    println!(
        "universal setup (μ = 15): {:.1} s",
        t0.elapsed().as_secs_f64()
    );
    let system = ProofSystem::setup(srs);
    let chip = ChipConfig::table5_design();

    println!(
        "\n{:<38} {:>4} {:>7} {:>7} {:>7} {:>10} {:>10}",
        "workload", "μ", "zero%", "one%", "dense%", "prove(s)", "model(ms)"
    );
    let assumed = Workload::standard(20);
    for spec in suite {
        let (circuit, witness) = spec.build(&mut rng);
        let stats = CircuitStats::measure(&circuit, &witness);
        let (prover, verifier) = system.preprocess(circuit)?;

        let t = Instant::now();
        let proof = prover.prove(&witness)?;
        let prove_seconds = t.elapsed().as_secs_f64();
        verifier.verify(&proof)?;

        let workload = measured_workload(&stats)?.with_num_vars(20);
        let sim = chip.simulate(&workload);
        println!(
            "{:<38} {:>4} {:>6.1}% {:>6.1}% {:>6.1}% {:>10.2} {:>10.2}",
            spec.name(),
            stats.num_vars,
            stats.zero_fraction() * 100.0,
            stats.one_fraction() * 100.0,
            stats.dense_fraction() * 100.0,
            prove_seconds,
            sim.total_seconds() * 1e3
        );
    }
    let sim_assumed = chip.simulate(&assumed);
    println!(
        "{:<38} {:>4} {:>6.1}% {:>6.1}% {:>6.1}% {:>10} {:>10.2}",
        "paper assumption (45/45/10)",
        20,
        45.0,
        45.0,
        10.0,
        "-",
        sim_assumed.total_seconds() * 1e3
    );
    println!(
        "\nall model runtimes are for the Table 5 design at 2^20 gates; the\n\
         measured splits come from the compiled circuits above, projected to μ = 20."
    );
    Ok(())
}
