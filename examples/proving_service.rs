//! The proving service end to end: one long-running [`ProvingService`]
//! over a μ = 14 universal setup, the three real-circuit workloads
//! (hash-chain, Merkle-membership, state-transition) registered as
//! sessions, and four concurrent clients submitting interleaved jobs at
//! mixed priorities **through the byte-level wire protocol** — every
//! circuit, witness and proof crosses the client/service boundary as
//! canonical frames, exactly as it would over a socket.
//!
//! Run with: `cargo run --release --example proving_service`

use std::sync::Arc;
use std::time::Instant;

use zkspeed::prelude::*;
use zkspeed::svc::{JobState, Request, Response};
use zkspeed_rt::codec::Reader;

/// A minimal wire-protocol client: frames out, frames in.
struct Client<'a> {
    service: &'a ProvingService,
}

impl Client<'_> {
    fn call(&self, request: &Request) -> Response {
        let frame = self.service.handle_frame(&request.to_frame());
        let mut reader = Reader::new(&frame);
        let payload = reader.frame().expect("framed response");
        Response::from_bytes(payload).expect("canonical response")
    }

    fn register(&self, circuit: &Circuit) -> [u8; 32] {
        match self.call(&Request::SubmitCircuit {
            circuit: circuit.to_bytes(),
        }) {
            Response::CircuitRegistered { digest, .. } => digest,
            other => panic!("registration failed: {other:?}"),
        }
    }

    fn submit(&self, digest: [u8; 32], witness: &Witness, priority: Priority) -> u64 {
        match self.call(&Request::SubmitJob {
            circuit: digest,
            priority,
            witness: witness.to_bytes(),
        }) {
            Response::JobAccepted { job } => job,
            Response::Rejected { code, detail } => {
                panic!("submission rejected ({code:?}): {detail}")
            }
            other => panic!("submission failed: {other:?}"),
        }
    }

    fn wait_for_proof(&self, job: u64) -> Vec<u8> {
        loop {
            match self.call(&Request::JobStatus { job }) {
                Response::ProofReady { proof, .. } => return proof,
                Response::Status { state, .. } => {
                    assert!(matches!(state, JobState::Queued | JobState::Running));
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                other => panic!("status poll failed: {other:?}"),
            }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);

    let t0 = Instant::now();
    let srs = Srs::try_setup(14, &mut rng)?;
    println!(
        "universal setup (μ = 14, fixed-base tables): {:.2} s",
        t0.elapsed().as_secs_f64()
    );

    let system = ProofSystem::setup(srs);
    let service = Arc::new(
        system.serve(
            ServiceConfig::default()
                .with_wave_size(4)
                .with_queue_capacity(64),
        ),
    );
    println!(
        "service started: {} shard(s) × {} thread(s), queue capacity {}/shard\n",
        service.shard_count(),
        service.config().threads_per_shard,
        service.config().queue_capacity
    );

    // Register the three workloads as sessions, over the wire.
    let client = Client { service: &service };
    let mut sessions = Vec::new();
    for spec in WorkloadSpec::test_suite() {
        let (circuit, witness) = spec.build(&mut rng);
        let digest = client.register(&circuit);
        println!(
            "registered {:<40} session {}…",
            spec.name(),
            hex(&digest[..6])
        );
        sessions.push((spec, digest, witness));
    }

    // Four clients, 24 interleaved jobs across all sessions and priorities.
    const CLIENTS: usize = 4;
    const JOBS_PER_CLIENT: usize = 6;
    println!("\nserving {CLIENTS} clients × {JOBS_PER_CLIENT} jobs …");
    let t1 = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let service = Arc::clone(&service);
            let sessions: Vec<([u8; 32], Witness)> = sessions
                .iter()
                .map(|(_, digest, witness)| (*digest, witness.clone()))
                .collect();
            std::thread::spawn(move || {
                let client = Client { service: &service };
                let jobs: Vec<(u64, [u8; 32])> = (0..JOBS_PER_CLIENT)
                    .map(|i| {
                        let (digest, witness) = &sessions[(id + i) % sessions.len()];
                        let priority = Priority::ALL[(id + i) % 3];
                        (client.submit(*digest, witness, priority), *digest)
                    })
                    .collect();
                jobs.into_iter()
                    .map(|(job, digest)| (digest, client.wait_for_proof(job)))
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    let mut proofs = 0usize;
    for worker in workers {
        for (digest, proof_bytes) in worker.join().expect("client thread") {
            let vk = service.verifying_key(&digest).expect("registered session");
            let proof = Proof::from_bytes(&proof_bytes)?;
            zkspeed::hyperplonk::verify(&vk, &proof)?;
            proofs += 1;
        }
    }
    let elapsed = t1.elapsed().as_secs_f64();
    println!(
        "served and verified {proofs} proofs in {elapsed:.2} s ({:.2} proofs/s)\n",
        proofs as f64 / elapsed
    );

    // The operational picture, straight off the metrics endpoint.
    let metrics = service.metrics();
    println!(
        "waves: {} (mean occupancy {:.2}, max {}), peak queue depth {}",
        metrics.waves,
        metrics.mean_wave_occupancy,
        metrics.max_wave_occupancy,
        metrics.peak_queue_depth
    );
    for session in &metrics.sessions {
        println!(
            "session {}…  jobs {:>3}  p50 {:>8.1} ms  p99 {:>8.1} ms",
            hex(&session.digest[..6]),
            session.jobs_completed,
            session.p50_ms,
            session.p99_ms
        );
    }
    match client.call(&Request::Metrics) {
        Response::Metrics { json } => {
            println!("\nmetrics endpoint returned {} bytes of JSON", json.len())
        }
        other => panic!("metrics failed: {other:?}"),
    }
    Ok(())
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
