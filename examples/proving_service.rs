//! The proving service end to end **over real loopback TCP**: one
//! long-running [`ProvingService`] behind a [`NetServer`] on an ephemeral
//! `127.0.0.1` port, the three real-circuit workloads (hash-chain,
//! Merkle-membership, state-transition) registered as sessions, and four
//! concurrent [`NetClient`]s — each with its own authenticated socket —
//! submitting interleaved jobs at mixed priorities. Every circuit, witness
//! and proof crosses the process boundary as canonical frames on the wire,
//! metrics are scraped over the same socket, and the server drains
//! gracefully at the end.
//!
//! Run with: `cargo run --release --example proving_service`

use std::time::{Duration, Instant};

use zkspeed::prelude::*;

const TOKEN: &[u8] = b"example-token";

/// `(session digest, serialized witness-or-proof bytes)` pairs shuttled
/// between the client threads and the verifier loop.
type DigestBytes = Vec<([u8; 32], Vec<u8>)>;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);

    let t0 = Instant::now();
    let srs = Srs::try_setup(14, &mut rng)?;
    println!(
        "universal setup (μ = 14, fixed-base tables): {:.2} s",
        t0.elapsed().as_secs_f64()
    );

    let system = ProofSystem::setup(srs);
    let service = system.serve(
        ServiceConfig::default()
            .with_wave_size(4)
            .with_queue_capacity(64),
    );
    println!(
        "service started: {} shard(s) × {} thread(s), queue capacity {}/shard",
        service.shard_count(),
        service.config().threads_per_shard,
        service.config().queue_capacity
    );

    let server = NetServer::bind(
        service,
        ServerConfig::new("127.0.0.1:0").with_auth_token(TOKEN),
    )?;
    let addr = server.local_addr();
    println!("listening on {addr}\n");

    // Register the three workloads as sessions, over the wire.
    let mut admin = NetClient::connect(addr, TOKEN, ClientConfig::default())?;
    println!(
        "connected to {} (protocol v{})",
        admin.server_id(),
        admin.protocol()
    );
    let mut sessions = Vec::new();
    for spec in WorkloadSpec::test_suite() {
        let (circuit, witness) = spec.build(&mut rng);
        let (digest, num_vars) = admin.register_circuit(&circuit.to_bytes())?;
        println!(
            "registered {:<40} μ={num_vars} session {}…",
            spec.name(),
            hex(&digest[..6])
        );
        sessions.push((digest, witness));
    }

    // Four clients, 24 interleaved jobs, each over its own TCP connection.
    const CLIENTS: usize = 4;
    const JOBS_PER_CLIENT: usize = 6;
    println!("\nserving {CLIENTS} clients × {JOBS_PER_CLIENT} jobs over TCP …");
    let t1 = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let sessions: DigestBytes = sessions
                .iter()
                .map(|(digest, witness)| (*digest, witness.to_bytes()))
                .collect();
            std::thread::spawn(move || -> Result<DigestBytes, NetError> {
                let mut client = NetClient::connect(addr, TOKEN, ClientConfig::default())?;
                let jobs: Vec<(u64, [u8; 32])> = sessions
                    .iter()
                    .cycle()
                    .skip(id)
                    .take(JOBS_PER_CLIENT)
                    .enumerate()
                    .map(|(i, (digest, witness))| {
                        let priority = Priority::ALL[(id + i) % 3];
                        Ok((client.submit(*digest, priority, witness)?, *digest))
                    })
                    .collect::<Result<_, NetError>>()?;
                jobs.into_iter()
                    .map(|(job, digest)| Ok((digest, client.wait(job, Duration::from_secs(120))?)))
                    .collect()
            })
        })
        .collect();

    let mut proofs = 0usize;
    for worker in workers {
        for (digest, proof_bytes) in worker.join().expect("client thread")? {
            let vk = server
                .service()
                .verifying_key(&digest)
                .expect("registered session");
            let proof = Proof::from_bytes(&proof_bytes)?;
            zkspeed::hyperplonk::verify(&vk, &proof)?;
            proofs += 1;
        }
    }
    let elapsed = t1.elapsed().as_secs_f64();
    println!(
        "served and verified {proofs} proofs in {elapsed:.2} s ({:.2} proofs/s)\n",
        proofs as f64 / elapsed
    );

    // The operational picture, scraped over the wire like an operator
    // would. The registration connection idled out during proving (the
    // server reaps idle sockets), so scrape on a fresh one.
    drop(admin);
    let mut scraper = NetClient::connect(addr, TOKEN, ClientConfig::default())?;
    let json = scraper.metrics()?;
    println!("metrics endpoint returned {} bytes of JSON", json.len());
    let metrics = server.service().metrics();
    println!(
        "waves: {} (mean occupancy {:.2}, max {}), peak queue depth {}, connections {} (open {})",
        metrics.waves,
        metrics.mean_wave_occupancy,
        metrics.max_wave_occupancy,
        metrics.peak_queue_depth,
        metrics.connections.total,
        metrics.connections.open
    );
    for session in &metrics.sessions {
        println!(
            "session {}…  jobs {:>3}  p50 {:>8.1} ms  p99 {:>8.1} ms",
            hex(&session.digest[..6]),
            session.jobs_completed,
            session.p50_ms,
            session.p99_ms
        );
    }

    // Graceful drain: finish anything in flight, join every thread.
    drop(scraper);
    let final_metrics = server.shutdown();
    println!(
        "\ndrained: {} proofs served over {} connections",
        final_metrics.completed, final_metrics.connections.total
    );
    Ok(())
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
